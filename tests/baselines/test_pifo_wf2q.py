"""Tests for the Fig. 2 PIFO-emulation study."""

import random

import pytest

from repro.baselines.pifo_wf2q import (HeadPacket, ideal_wf2q_order,
                                       order_deviation, paper_example,
                                       single_pifo_order, two_pifo_order)
from repro.experiments.fig2_expressiveness import (pieo_order,
                                                   random_workload)


def test_paper_example_ideal_order():
    """Ideal WF2Q+: A first (only A/B eligible, A finishes first); C's
    small finish wins as soon as it becomes eligible."""
    order = ideal_wf2q_order(paper_example())
    assert order == ["A", "C", "B", "D", "E", "F"]


def test_pieo_matches_ideal_on_example():
    packets = paper_example()
    assert pieo_order(packets) == ideal_wf2q_order(packets)


def test_single_pifo_finish_serves_ineligible_early():
    packets = paper_example()
    order = single_pifo_order(packets, "finish_time")
    # C is served first despite being ineligible until t=5.
    assert order[0] == "C"
    assert order != ideal_wf2q_order(packets)


def test_single_pifo_start_violates_finish_order():
    packets = paper_example()
    order = single_pifo_order(packets, "start_time")
    # D (start 4) is served before C (start 5, smaller finish).
    assert order.index("D") < order.index("C")


def test_two_pifo_reproduces_paper_inversion():
    """Fig. 2e: D is released to the rank PIFO before C, so D is
    scheduled before C even though C has the smaller finish time."""
    packets = paper_example()
    order = two_pifo_order(packets)
    assert order.index("D") < order.index("C")
    ideal = ideal_wf2q_order(packets)
    assert ideal.index("C") < ideal.index("D")


def test_all_emulations_are_permutations():
    packets = paper_example()
    expected = sorted(p.name for p in packets)
    for order in (ideal_wf2q_order(packets),
                  single_pifo_order(packets, "finish_time"),
                  single_pifo_order(packets, "start_time"),
                  two_pifo_order(packets)):
        assert sorted(order) == expected


def test_order_deviation_metric():
    assert order_deviation(["a", "b", "c"], ["a", "b", "c"]) == (0, 0.0)
    maximum, mean = order_deviation(["a", "b", "c"], ["c", "b", "a"])
    assert maximum == 2
    assert mean == pytest.approx(4 / 3)


def test_ideal_order_idles_until_eligibility():
    packets = [
        HeadPacket("late", length=1, start_time=100, finish_time=101),
        HeadPacket("later", length=1, start_time=200, finish_time=201),
    ]
    assert ideal_wf2q_order(packets) == ["late", "later"]


def test_two_pifo_deviation_grows_with_n():
    """The O(N) deviation claim of Section 2.3."""
    rng = random.Random(42)
    worst = {}
    for size in (16, 128):
        packets = random_workload(size, rng)
        ideal = ideal_wf2q_order(packets)
        worst[size] = order_deviation(ideal, two_pifo_order(packets))[0]
    assert worst[128] > worst[16]
    assert worst[128] > 128 / 4  # deviation is a constant fraction of N


def test_pieo_matches_ideal_on_random_workloads():
    rng = random.Random(1)
    for _ in range(10):
        packets = random_workload(50, rng)
        assert pieo_order(packets) == ideal_wf2q_order(packets)


def test_single_pifo_invalid_key():
    with pytest.raises(ValueError):
        single_pifo_order(paper_example(), "length")
