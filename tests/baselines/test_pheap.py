"""P-heap-specific tests: heap cycle model and the Section 7 argument
(Extract-Out cost grows with ineligible population; PIEO's does not)."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.pheap import PHeap
from repro.core.element import Element
from repro.core.reference import ReferencePieo


def test_dequeue_min_ignores_eligibility():
    heap = PHeap(16)
    heap.enqueue(Element("blocked", rank=1, send_time=math.inf))
    heap.enqueue(Element("ready", rank=2, send_time=0))
    assert heap.dequeue_min().flow_id == "blocked"


def test_enqueue_cost_is_logarithmic():
    heap = PHeap(1024)
    for index in range(1023):
        heap.enqueue(Element(index, rank=index))
    cycles = heap.counters.cycles
    heap.enqueue(Element("last", rank=0))
    # 1024 elements -> ceil(log2(1025)) = 11 levels touched.
    assert heap.counters.cycles - cycles == 11


def test_eligible_extract_from_root_is_cheap():
    heap = PHeap(64)
    for index in range(63):
        heap.enqueue(Element(index, rank=index, send_time=0))
    before = heap.counters.cycles
    served = heap.dequeue(now=0)
    assert served.flow_id == 0
    # 1 visit + trickle-down levels.
    assert heap.counters.cycles - before <= 1 + heap.levels() + 1


def test_extract_cost_grows_with_ineligible_prefix():
    """The paper's point: ineligible small-rank elements force the heap
    search deep; PIEO's pointer-array summary skips them in one cycle."""
    def extract_cost(ineligible):
        heap = PHeap(256)
        for index in range(ineligible):
            heap.enqueue(Element(("blocked", index), rank=index,
                                 send_time=math.inf))
        heap.enqueue(Element("target", rank=10_000, send_time=0))
        before = heap.counters.cycles
        assert heap.dequeue(now=0).flow_id == "target"
        return heap.counters.cycles - before

    costs = [extract_cost(n) for n in (0, 16, 64, 255)]
    assert costs == sorted(costs)
    assert costs[-1] > 20 * costs[0]


def test_heap_property_maintained(rng):
    heap = PHeap(128)
    for index in range(128):
        heap.enqueue(Element(index, rank=rng.randint(0, 50)))
    heap.check()
    for _ in range(60):
        heap.dequeue(now=0)
        heap.check()


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 12),
                          st.sampled_from([0, 5, 9, float("inf")])),
                max_size=40),
       st.integers(0, 10))
def test_pheap_extract_matches_oracle(pairs, now):
    heap = PHeap(64)
    oracle = ReferencePieo(64)
    for index, (rank, send_time) in enumerate(pairs):
        heap.enqueue(Element(index, rank=rank, send_time=send_time))
        oracle.enqueue(Element(index, rank=rank, send_time=send_time))
    while True:
        ours = heap.dequeue(now)
        expected = oracle.dequeue(now)
        assert (ours is None) == (expected is None)
        if ours is None:
            break
        assert ours.flow_id == expected.flow_id


def test_dequeue_flow_positional_search():
    heap = PHeap(32)
    for index in range(20):
        heap.enqueue(Element(index, rank=index))
    assert heap.dequeue_flow(13).flow_id == 13
    assert heap.dequeue_flow(13) is None
    heap.check()
