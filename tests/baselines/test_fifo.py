"""Tests for the FIFO baseline scheduler."""

import math

from repro.baselines.fifo import FifoScheduler
from repro.sim.packet import Packet


def test_fifo_serves_in_arrival_order():
    fifo = FifoScheduler()
    fifo.on_arrival("b", Packet("b"), 0.0)
    fifo.on_arrival("a", Packet("a"), 1.0)
    fifo.on_arrival("b", Packet("b"), 2.0)
    order = []
    while True:
        packets = fifo.schedule(0.0)
        if not packets:
            break
        order.extend(p.flow_id for p in packets)
    assert order == ["b", "a", "b"]


def test_fifo_cannot_reorder_or_shape():
    """The expressiveness limitation: arrival order is the only order."""
    fifo = FifoScheduler()
    fifo.on_arrival("low-priority", Packet("low-priority"), 0.0)
    fifo.on_arrival("high-priority", Packet("high-priority"), 0.0)
    assert fifo.schedule(0.0)[0].flow_id == "low-priority"


def test_fifo_empty_schedule():
    fifo = FifoScheduler()
    assert fifo.schedule(0.0) == []
    assert math.isinf(fifo.next_eligible_time(0.0))
