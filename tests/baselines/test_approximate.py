"""Tests for the approximate datastructures (Section 2.3)."""

import math

import pytest

from repro.baselines.approximate import (CalendarQueue, MultiPriorityFifo,
                                         TimingWheel)
from repro.core.element import Element
from repro.errors import ConfigurationError


def test_calendar_queue_bucket_order():
    calendar = CalendarQueue(num_buckets=4, bucket_width=10)
    calendar.enqueue(Element("big", rank=35))
    calendar.enqueue(Element("small", rank=5))
    assert calendar.dequeue(now=0).flow_id == "small"
    assert calendar.dequeue(now=0).flow_id == "big"


def test_calendar_queue_loses_order_within_bucket():
    """The approximation: FIFO within a bucket, not rank order."""
    calendar = CalendarQueue(num_buckets=4, bucket_width=10)
    calendar.enqueue(Element("later-but-first", rank=9))
    calendar.enqueue(Element("smaller-but-second", rank=1))
    assert calendar.dequeue(now=0).flow_id == "later-but-first"


def test_calendar_queue_overflow_bucket():
    calendar = CalendarQueue(num_buckets=2, bucket_width=10)
    calendar.enqueue(Element("huge", rank=1e6))
    assert calendar.bucket_index(Element("x", rank=1e6)) == 1
    assert calendar.dequeue(now=0).flow_id == "huge"


def test_calendar_queue_respects_eligibility():
    calendar = CalendarQueue(num_buckets=4, bucket_width=10)
    calendar.enqueue(Element("blocked", rank=1, send_time=100))
    calendar.enqueue(Element("ready", rank=30, send_time=0))
    assert calendar.dequeue(now=0).flow_id == "ready"
    assert calendar.dequeue(now=0) is None


def test_timing_wheel_slots_by_send_time():
    wheel = TimingWheel(num_buckets=10, bucket_width=1.0)
    wheel.enqueue(Element("soon", rank=99, send_time=0.5))
    wheel.enqueue(Element("late", rank=1, send_time=5.5))
    assert wheel.dequeue(now=10).flow_id == "soon"  # slot order, not rank
    assert wheel.dequeue(now=10).flow_id == "late"


def test_timing_wheel_infinite_send_time_goes_last():
    wheel = TimingWheel(num_buckets=4, bucket_width=1.0)
    wheel.enqueue(Element("never", rank=1, send_time=math.inf))
    wheel.enqueue(Element("now", rank=2, send_time=0))
    assert wheel.dequeue(now=0).flow_id == "now"
    assert wheel.dequeue(now=0) is None


def test_multi_priority_fifo_strict_levels():
    fifo = MultiPriorityFifo(num_levels=4, level_width=10)
    fifo.enqueue(Element("low", rank=35))
    fifo.enqueue(Element("high", rank=5))
    assert fifo.dequeue(now=0).flow_id == "high"
    assert fifo.dequeue(now=0).flow_id == "low"


def test_multi_priority_fifo_head_of_line_blocking():
    """Only level heads are inspected: an ineligible head hides an
    eligible element behind it."""
    fifo = MultiPriorityFifo(num_levels=2, level_width=10)
    fifo.enqueue(Element("blocked-head", rank=1, send_time=100))
    fifo.enqueue(Element("ready-behind", rank=2, send_time=0))
    assert fifo.dequeue(now=0) is None  # level 0 head ineligible
    fifo.enqueue(Element("other-level", rank=15, send_time=0))
    assert fifo.dequeue(now=0).flow_id == "other-level"


def test_common_interface_operations():
    for structure in (CalendarQueue(4, 10), TimingWheel(4, 10),
                      MultiPriorityFifo(4, 10)):
        structure.enqueue(Element("a", rank=1, send_time=2))
        structure.enqueue(Element("b", rank=12, send_time=7))
        assert len(structure) == 2
        assert structure.min_send_time() == 2
        assert structure.peek(now=10) is not None
        assert structure.dequeue_flow("b").flow_id == "b"
        assert structure.dequeue_flow("b") is None
        assert len(structure) == 1
        assert [e.flow_id for e in structure.snapshot()] == ["a"]


def test_group_range_supported():
    for structure in (CalendarQueue(4, 10), TimingWheel(4, 10)):
        structure.enqueue(Element("g1", rank=1, group=1))
        structure.enqueue(Element("g2", rank=2, group=2))
        assert structure.dequeue(now=0, group_range=(2, 2)).flow_id == "g2"


def test_multi_priority_fifo_group_blocks_at_head():
    """Per-level FIFOs only expose heads, so a head outside the group
    range blocks its level — unlike PIEO's arbitrary-subset extraction."""
    fifo = MultiPriorityFifo(4, 10)
    fifo.enqueue(Element("g1", rank=1, group=1))
    fifo.enqueue(Element("g2", rank=2, group=2))  # same level, behind g1
    assert fifo.dequeue(now=0, group_range=(2, 2)) is None
    assert fifo.dequeue(now=0, group_range=(1, 1)).flow_id == "g1"
    assert fifo.dequeue(now=0, group_range=(2, 2)).flow_id == "g2"


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        CalendarQueue(0, 10)
    with pytest.raises(ConfigurationError):
        TimingWheel(4, 0)
    with pytest.raises(ConfigurationError):
        MultiPriorityFifo(0, 10)
