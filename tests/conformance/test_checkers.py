"""Unit tests for the invariant checkers.

Two kinds of evidence: hand-built traces where the expected violation
is constructed line by line, and real runs re-checked under a *wrong*
spec (e.g. strict priority judged as a fair queue) where the checker
must fire because the algorithm genuinely does not provide the bound.
"""

import pytest

from repro.conformance.checkers import (CHECKERS, ConformanceRun,
                                        run_checker)
from repro.conformance.runner import (check_algorithm, check_run,
                                      run_scenario)
from repro.conformance.scenarios import make_scenario
from repro.obs.analyze import TraceAnalysis
from repro.obs.trace import Tracer
from repro.sched.spec import AlgorithmSpec

US = 1e-6


def _synthetic_run(events, spec=None, link_rate_bps=1e9):
    analysis = TraceAnalysis(events)
    return ConformanceRun(analysis=analysis,
                          spec=spec or AlgorithmSpec(),
                          link_rate_bps=link_rate_bps)


def _healthy_trace():
    """One flow, two packets, back to back, fully conservative."""
    tracer = Tracer()
    tracer.arrival(0.0, "a", 1500, packet_id=1)
    tracer.enqueue(0.0, "a", rank=0.0, send_time=0.0)
    tracer.dequeue(0.0, "a", rank=0.0, send_time=0.0)
    tracer.departure(0.0, "a", 1500, packet_id=1, finish=12 * US,
                     arrival_t=0.0)
    tracer.arrival(5 * US, "a", 1000, packet_id=2)
    tracer.enqueue(5 * US, "a", rank=1.0, send_time=5 * US)
    tracer.dequeue(12 * US, "a", rank=1.0, send_time=5 * US)
    tracer.departure(12 * US, "a", 1000, packet_id=2, finish=20 * US,
                     arrival_t=5 * US)
    return tracer.events


def test_universal_checkers_pass_on_healthy_trace():
    run = _synthetic_run(_healthy_trace())
    for name in ("conservation", "per-flow-fifo", "link-overlap",
                 "work-conservation"):
        assert run_checker(name, run) == [], name


def test_per_flow_fifo_catches_swapped_ids():
    # Both packets arrive at t=0 so swapping the departure ids is a
    # pure reordering (not a departure-before-arrival, which the
    # conservation audit owns).
    tracer = Tracer()
    tracer.arrival(0.0, "a", 1500, packet_id=1)
    tracer.arrival(0.0, "a", 1000, packet_id=2)
    tracer.enqueue(0.0, "a", rank=0.0, send_time=0.0)
    tracer.dequeue(0.0, "a", rank=0.0, send_time=0.0)
    tracer.departure(0.0, "a", 1500, packet_id=2, finish=12 * US,
                     arrival_t=0.0)
    tracer.enqueue(0.0, "a", rank=1.0, send_time=0.0)
    tracer.dequeue(12 * US, "a", rank=1.0, send_time=0.0)
    tracer.departure(12 * US, "a", 1000, packet_id=1, finish=20 * US,
                     arrival_t=0.0)
    run = _synthetic_run(tracer.events)
    assert run_checker("per-flow-fifo", run)


def test_link_overlap_catches_overlapping_departures():
    tracer = Tracer()
    for pid, start in ((1, 0.0), (2, 6 * US)):  # 1500B takes 12us
        tracer.arrival(start, "a", 1500, packet_id=pid)
        tracer.enqueue(start, "a", rank=float(pid), send_time=start)
        tracer.dequeue(start, "a", rank=float(pid), send_time=start)
        tracer.departure(start, "a", 1500, packet_id=pid,
                         finish=start + 12 * US, arrival_t=start)
    run = _synthetic_run(tracer.events)
    assert run_checker("link-overlap", run)


def test_work_conservation_catches_idle_with_eligible_backlog():
    tracer = Tracer()
    tracer.arrival(0.0, "a", 1500, packet_id=1)
    # Eligible from t=0 (send_time=0) but served only at t=50us: the
    # link idled 50us with work available.
    tracer.enqueue(0.0, "a", rank=0.0, send_time=0.0)
    tracer.dequeue(50 * US, "a", rank=0.0, send_time=0.0)
    tracer.departure(50 * US, "a", 1500, packet_id=1,
                     finish=62 * US, arrival_t=0.0)
    run = _synthetic_run(tracer.events)
    violations = run_checker("work-conservation", run)
    assert violations
    assert "idle" in str(violations[0])


def test_idle_legality_accepts_shaped_waiting():
    tracer = Tracer()
    tracer.arrival(0.0, "a", 1500, packet_id=1)
    # Ineligible until its send_time at t=50us: the same 50us idle gap
    # is legal for a shaper.
    tracer.enqueue(0.0, "a", rank=50 * US, send_time=50 * US,
                   eligible=False)
    tracer.dequeue(50 * US, "a", rank=50 * US, send_time=50 * US)
    tracer.departure(50 * US, "a", 1500, packet_id=1,
                     finish=62 * US, arrival_t=0.0)
    run = _synthetic_run(tracer.events,
                         spec=AlgorithmSpec(work_conserving=False,
                                            shaped=True))
    assert run_checker("idle-legality", run) == []


def test_no_early_release_catches_pre_send_time_departure():
    tracer = Tracer()
    tracer.arrival(0.0, "a", 1500, packet_id=1)
    tracer.enqueue(0.0, "a", rank=50 * US, send_time=50 * US,
                   eligible=False)
    tracer.dequeue(30 * US, "a", rank=50 * US, send_time=50 * US)
    tracer.departure(30 * US, "a", 1500, packet_id=1,
                     finish=42 * US, arrival_t=0.0)
    run = _synthetic_run(tracer.events,
                         spec=AlgorithmSpec(work_conserving=False,
                                            shaped=True))
    assert run_checker("no-early-release", run)


# ----------------------------------------------------------------------
# Wrong-spec probes: a checker must fire when the algorithm genuinely
# lacks the promised bound.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def strict_priority_backlogged():
    scenario = make_scenario("backlogged")
    return run_scenario(scenario, "strict-priority"), scenario


def test_fairness_envelope_fires_for_packet_fair_sfq():
    """SFQ is packet-fair, not byte-fair: judged in bytes (instead of
    its spec's packet unit) the envelope must break under mixed
    sizes."""
    scenario = make_scenario("backlogged")
    run = run_scenario(scenario, "sfq")
    judged = ConformanceRun(
        analysis=run.analysis,
        spec=AlgorithmSpec(fairness_envelope_mtu=4.0),
        algorithm=run.algorithm, scenario=scenario,
        link_rate_bps=run.link_rate_bps)
    assert run_checker("fairness-envelope", judged), (
        "byte-judged SFQ must drift outside the envelope")


def test_gps_delay_bound_fires_for_strict_priority(
        strict_priority_backlogged):
    run, scenario = strict_priority_backlogged
    judged = ConformanceRun(
        analysis=run.analysis,
        spec=AlgorithmSpec(gps_delay_slack=1.0),
        algorithm=run.algorithm, scenario=scenario,
        link_rate_bps=run.link_rate_bps)
    assert run_checker("gps-delay-bound", judged), (
        "strict priority starves low-priority flows far beyond the "
        "GPS bound")


def test_priority_inversion_fires_for_fair_queue():
    scenario = make_scenario("priority")
    run = run_scenario(scenario, "drr")
    judged = ConformanceRun(
        analysis=run.analysis,
        spec=AlgorithmSpec(priority_ordered=True),
        algorithm=run.algorithm, scenario=scenario,
        link_rate_bps=run.link_rate_bps)
    assert run_checker("priority-inversion", judged), (
        "round robin across priorities must show inversions when "
        "judged as strict priority")


def test_checker_registry_covers_all_spec_names():
    spec_names = set()
    for flags in (
            {}, {"work_conserving": False}, {"shaped": True},
            {"gps_delay_slack": 1.0}, {"fairness_envelope_mtu": 1.0},
            {"priority_ordered": True}, {"token_bucket": True},
            {"slotted": True}):
        spec_names.update(AlgorithmSpec(**flags).checkers())
    assert spec_names == set(CHECKERS), (
        "spec-derivable checker names and the registry diverged")


def test_check_run_reports_every_applicable_checker():
    scenario = make_scenario("backlogged")
    run = run_scenario(scenario, "drr")
    outcomes = check_run(run)
    assert [outcome.checker for outcome in outcomes] == \
        list(run.spec.checkers())


def test_injected_reorder_fails_the_report():
    report = check_algorithm("drr", inject="reorder")
    assert not report.passed


def test_injected_early_fails_the_report():
    report = check_algorithm("drr", inject="early")
    assert not report.passed
