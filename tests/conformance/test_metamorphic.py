"""Metamorphic harness tests: transforms preserve verdicts.

The quick tests pin each transform's mechanics and run one cheap
algorithm through the battery; the full registry sweep (every
algorithm x every transform x backend/event-queue substitution) is
``slow``-marked for the conformance CI job.
"""

import pytest

from repro.conformance.metamorphic import (TRANSFORMS, apply_transform,
                                           metamorphic_verdicts)
from repro.conformance.scenarios import make_scenario
from repro.sched.registry import available_algorithms, get_spec

SUBSTITUTIONS = [{"backend": "fast"}, {"event_queue": "calendar"}]


def test_scale_time_rescales_everything_consistently():
    scenario = make_scenario("slotted")
    scaled = apply_transform("time-scale", scenario)
    assert scaled.duration == pytest.approx(2 * scenario.duration)
    assert scaled.link_rate_bps == pytest.approx(
        scenario.link_rate_bps / 2)
    assert scaled.slot_plan[0] == pytest.approx(
        2 * scenario.slot_plan[0])
    assert scaled.arrivals[0][0] == pytest.approx(
        2 * scenario.arrivals[0][0])
    # Sizes are untouched.
    assert ([size for _, _, size in scaled.arrivals]
            == [size for _, _, size in scenario.arrivals])


def test_scale_size_preserves_times():
    scenario = make_scenario("shaped")
    scaled = apply_transform("size-scale", scenario)
    assert ([time for time, _, _ in scaled.arrivals]
            == [time for time, _, _ in scenario.arrivals])
    assert scaled.flows[0].rate_bps == pytest.approx(
        2 * scenario.flows[0].rate_bps)
    assert scaled.flows[0].burst_bytes == pytest.approx(
        2 * scenario.flows[0].burst_bytes)


def test_permute_flows_moves_attributes_with_arrivals():
    scenario = make_scenario("priority")
    permuted = apply_transform("flow-permutation", scenario)
    base_priority = {flow.flow_id: flow.priority
                     for flow in scenario.flows}
    new_priority = {flow.flow_id: flow.priority
                    for flow in permuted.flows}
    # The multiset of priorities is unchanged and per-flow arrival
    # counts moved with the renaming.
    assert sorted(base_priority.values()) == \
        sorted(new_priority.values())
    assert len(permuted.arrivals) == len(scenario.arrivals)


def test_translate_time_shifts_and_extends():
    scenario = make_scenario("poisson")
    shifted = apply_transform("time-translation", scenario)
    offset = shifted.arrivals[0][0] - scenario.arrivals[0][0]
    assert offset > 0
    assert shifted.duration == pytest.approx(
        scenario.duration + 1.3e-3)


def test_drr_battery_preserves_verdicts():
    scenario = make_scenario("backlogged")
    result = metamorphic_verdicts("drr", scenario,
                                  substitutions=SUBSTITUTIONS)
    assert result.passed, result.mismatches
    assert set(result.transformed) == (
        set(TRANSFORMS) | {"backend=fast", "event_queue=calendar"})


@pytest.mark.slow
@pytest.mark.parametrize("name", available_algorithms())
def test_full_registry_metamorphic_sweep(name):
    spec = get_spec(name)
    scenario = make_scenario(spec.scenario)
    result = metamorphic_verdicts(name, scenario,
                                  substitutions=SUBSTITUTIONS)
    assert result.base.passed, (
        f"{name} base scenario failed before any transform")
    assert result.passed, f"{name}: {result.mismatches}"
