"""Unit tests for the GPS fluid oracle and token-bucket reconstruction.

Every expectation here is a hand calculation on a workload small enough
to integrate on paper; the oracle must reproduce it exactly (to float
tolerance), since the conformance checkers inherit its precision.
"""

import math

import pytest

from repro.conformance.oracle import (gps_finish_times,
                                      token_bucket_violations)

R = 1e9  # 1 Gbps link for round serialization numbers
US = 1e-6


def bits(nbytes):
    return nbytes * 8


def test_single_flow_serializes_sequentially():
    # One flow owns the link: fluid service is the link rate, so each
    # packet finishes one serialization after the previous.
    arrivals = [(0.0, "a", 1500), (0.0, "a", 1500), (0.0, "a", 500)]
    result = gps_finish_times(arrivals, {"a": 1.0}, R)
    assert result.finish_times == pytest.approx(
        [12 * US, 24 * US, 28 * US])
    assert result.busy_until == pytest.approx(28 * US)


def test_two_equal_flows_share_the_link():
    # Both flows backlogged with equal weights: each is served at R/2,
    # so a 1500 B packet needs 24 us of wall time.
    arrivals = [(0.0, "a", 1500), (0.0, "b", 1500)]
    result = gps_finish_times(arrivals, {"a": 1.0, "b": 1.0}, R)
    assert result.finish_times == pytest.approx([24 * US, 24 * US])


def test_weighted_split_two_to_one():
    # w_a : w_b = 2 : 1 -> a at 2R/3, b at R/3 while both backlogged.
    # a's 1500 B at 2R/3 finishes at 18 us; b still has 1500 B - R/3 *
    # 18us = 750 B left and then owns the link: 18us + 6us = 24 us.
    arrivals = [(0.0, "a", 1500), (0.0, "b", 1500)]
    result = gps_finish_times(arrivals, {"a": 2.0, "b": 1.0}, R)
    assert result.finish_times == pytest.approx([18 * US, 24 * US])


def test_late_arrival_joins_midway():
    # a alone until t=6us (half of its 1500 B done), then b joins with
    # 750 B at equal weight: both drain at R/2.  a's remaining 750 B
    # takes 12 us -> finishes 18 us; b's 750 B likewise -> 18 us.
    arrivals = [(0.0, "a", 1500), (6 * US, "b", 750)]
    result = gps_finish_times(arrivals, {"a": 1.0, "b": 1.0}, R)
    assert result.finish_times == pytest.approx([18 * US, 18 * US])


def test_idle_gap_resets_busy_period():
    # Second packet arrives after the fluid system drained: it is
    # served alone starting at its own arrival.
    arrivals = [(0.0, "a", 1500), (100 * US, "a", 1500)]
    result = gps_finish_times(arrivals, {"a": 1.0}, R)
    assert result.finish_times == pytest.approx([12 * US, 112 * US])


def test_per_flow_fifo_within_oracle():
    # A flow's second packet cannot finish before its first even if
    # tiny: finish times per flow are monotone.
    arrivals = [(0.0, "a", 1500), (0.0, "b", 1500), (1 * US, "a", 50)]
    result = gps_finish_times(arrivals, {"a": 1.0, "b": 1.0}, R)
    a_first, a_second = result.finish_times[0], result.finish_times[2]
    assert a_second > a_first


def test_finish_tags_monotone_per_flow():
    arrivals = [(0.0, "a", 1500), (0.0, "a", 500), (5 * US, "a", 1000)]
    result = gps_finish_times(arrivals, {"a": 1.0}, R)
    assert (result.finish_tags[0] < result.finish_tags[1]
            < result.finish_tags[2])


def test_oracle_handles_empty_arrivals():
    result = gps_finish_times([], {"a": 1.0}, R)
    assert result.finish_times == []
    assert result.busy_until == 0.0


def test_oracle_time_scale_invariance():
    arrivals = [(0.0, "a", 1500), (3 * US, "b", 700), (9 * US, "a", 500)]
    weights = {"a": 2.0, "b": 1.0}
    base = gps_finish_times(arrivals, weights, R)
    k = 7.0
    scaled = gps_finish_times(
        [(t * k, f, s) for t, f, s in arrivals], weights, R / k)
    assert scaled.finish_times == pytest.approx(
        [t * k for t in base.finish_times])


# ----------------------------------------------------------------------
# Token-bucket reconstruction
# ----------------------------------------------------------------------
def test_token_bucket_conformant_stream_clean():
    # rate 1e6 B/s (8 Mbps), burst 3000 B: a full-burst release then
    # steady packets at exactly the token rate is conformant.
    rate_bps, burst = 8e6, 3000.0
    deps = [(0.0, 1500, 1), (0.0, 1500, 2)]
    t = 1500 / 1e6  # one packet's accrual
    for pid in range(3, 8):
        deps.append((t * (pid - 2), 1500, pid))
    assert token_bucket_violations(deps, rate_bps, burst) == []


def test_token_bucket_overdraw_flagged_with_deficit():
    rate_bps, burst = 8e6, 3000.0
    # Third packet exceeds burst before any meaningful accrual.
    deps = [(0.0, 1500, 1), (0.0, 1500, 2), (1e-6, 1500, 3)]
    findings = token_bucket_violations(deps, rate_bps, burst)
    assert len(findings) == 1
    assert findings[0].packet_id == 3
    # deficit = 1500 - rate * 1us = 1500 - 1 = 1499 bytes
    assert findings[0].deficit_bytes == pytest.approx(1499.0)


def test_token_bucket_accrual_is_capped_at_burst():
    rate_bps, burst = 8e6, 3000.0
    # A long idle cannot bank more than one burst.
    deps = [(10.0, 1500, 1), (10.0, 1500, 2), (10.0, 1500, 3)]
    findings = token_bucket_violations(deps, rate_bps, burst,
                                       start_time=0.0)
    assert len(findings) == 1
    assert findings[0].deficit_bytes == pytest.approx(1500.0)


def test_token_bucket_start_time_is_upper_bound():
    # Starting the bucket full at the first departure itself can only
    # be more permissive than any earlier origin.
    rate_bps, burst = 8e6, 1500.0
    deps = [(5.0, 1500, 1), (5.0 + 1500 / 1e6, 1500, 2)]
    assert token_bucket_violations(deps, rate_bps, burst) == []
