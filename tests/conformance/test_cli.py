"""CLI contract: ``python -m repro.conformance`` exit codes and output.

The conformance CLI is CI's enforcement point, so its exit codes are
part of the interface: 0 only when every unwaived checker passes, and
the ``--inject`` self-test must drive it non-zero (proof the harness
can actually fail).
"""

import json

import pytest

from repro.conformance.__main__ import main
from repro.conformance.runner import check_trace
from repro.conformance.scenarios import make_scenario
from repro.conformance.runner import run_scenario


def test_check_passes_for_conforming_algorithm(capsys):
    assert main(["check", "--algorithm", "drr"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("PASS drr")


def test_check_exits_nonzero_on_injected_reorder(capsys):
    assert main(["check", "--algorithm", "drr",
                 "--inject", "reorder"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_check_exits_nonzero_on_injected_early(capsys):
    assert main(["check", "--algorithm", "drr",
                 "--inject", "early"]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_check_reports_waived_outcomes(capsys):
    assert main(["check", "--algorithm", "wfq"]) == 0
    out = capsys.readouterr().out
    assert "waived" in out
    assert "waiver:" in out


def test_sweep_subset_passes(capsys):
    assert main(["sweep", "--algorithm", "drr",
                 "--algorithm", "strict-priority"]) == 0
    out = capsys.readouterr().out
    assert "all 2 algorithm(s) conform" in out


def test_report_prints_bounds_and_waivers(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "gps-delay-bound" in out
    assert "Documented waivers:" in out


def test_scenario_override(capsys):
    assert main(["check", "--algorithm", "drr",
                 "--scenario", "poisson"]) == 0
    assert "[poisson]" in capsys.readouterr().out


def test_check_trace_audits_jsonl(tmp_path, capsys):
    run = run_scenario(make_scenario("poisson"), "drr")
    path = tmp_path / "run.jsonl"
    with path.open("w") as sink:
        for event in run.analysis.events:
            record = event if isinstance(event, dict) else event
            json.dump(dict(record), sink)
            sink.write("\n")
    reports = check_trace(str(path))
    assert reports
    assert all(report.passed for report in reports)
    assert main(["check", "--trace", str(path)]) == 0
    assert "PASS" in capsys.readouterr().out


def test_unknown_algorithm_is_an_argparse_error():
    with pytest.raises(SystemExit):
        main(["check", "--algorithm", "definitely-not-registered"])
