"""check_trace on multi-switch (fabric) traces: the universal
invariants — conservation, per-flow FIFO, link non-overlap — must hold
independently at every hop, with one report per (run, switch)."""

import json

from repro.conformance.__main__ import main
from repro.conformance.runner import check_trace
from repro.net import Fabric
from repro.net.topology import leaf_spine
from repro.obs import Tracer
from repro.sim.packet import MTU_BYTES, reset_packet_ids


def _write_fabric_trace(path):
    reset_packet_ids(0)
    tracer = Tracer()
    fabric = Fabric(leaf_spine(leaves=2, spines=2, hosts_per_leaf=2),
                    tracer=tracer)
    fabric.open_flow("h0", "h3", 8 * MTU_BYTES)
    fabric.open_flow("h2", "h0", 4 * MTU_BYTES)
    fabric.sim.run()
    with open(path, "w") as handle:
        for event in tracer.events:
            handle.write(json.dumps(event.to_dict()) + "\n")
    return path


def test_fabric_trace_one_report_per_switch(tmp_path):
    path = _write_fabric_trace(tmp_path / "fabric.jsonl")
    reports = check_trace(str(path))
    assert all(report.passed for report in reports)
    titles = [report.algorithm for report in reports]
    # Each traversed hop gets its own labelled report.
    for hop in ("[h0]", "[l0]", "[l1]", "[h2]"):
        assert any(hop in title for title in titles)
    # Every report ran the full universal checker set.
    for report in reports:
        checkers = {outcome.checker for outcome in report.outcomes}
        assert "conservation" in checkers
        assert "per-flow-fifo" in checkers


def test_fabric_trace_cli_passes(tmp_path, capsys):
    path = _write_fabric_trace(tmp_path / "fabric.jsonl")
    assert main(["check", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "[l0]" in out


def test_corrupted_hop_fails_only_that_switch(tmp_path):
    path = tmp_path / "bad.jsonl"
    _write_fabric_trace(path)
    # Append a FIFO violation confined to l0's track: the flow's two
    # packets depart in the opposite of their arrival order.
    with open(path, "a") as handle:
        for packet_id, time in ((1000001, 9.0), (1000002, 9.1)):
            handle.write(json.dumps(
                {"t": time, "kind": "arrival", "flow_id": "bad",
                 "size_bytes": 10, "packet_id": packet_id,
                 "switch": "l0"}) + "\n")
        for packet_id, time in ((1000002, 9.2), (1000001, 9.3)):
            handle.write(json.dumps(
                {"t": time, "kind": "departure", "flow_id": "bad",
                 "size_bytes": 10, "packet_id": packet_id,
                 "finish": time + 0.01, "switch": "l0"}) + "\n")
    reports = check_trace(str(path))
    failed = [report for report in reports if not report.passed]
    assert failed
    assert all("[l0]" in report.algorithm for report in failed)
    passed_titles = [report.algorithm for report in reports
                     if report.passed]
    assert any("[l1]" in title for title in passed_titles)
