"""Every registered algorithm must pass its spec's conformance check.

This is the executable form of the Section 4 catalogue's promises: the
registry's :class:`~repro.sched.spec.AlgorithmSpec` derives the checker
set, the spec's default scenario drives the run, and any unwaived
violation fails the build.  Adding an algorithm to the registry
automatically adds it here.
"""

import pytest

from repro.conformance import check_algorithm
from repro.sched.registry import available_algorithms, get_spec
from repro.sched.spec import UNIVERSAL_CHECKERS


@pytest.fixture(params=available_algorithms())
def algorithm_name(request):
    """Every registered algorithm name (the conformance registry
    fixture: new registrations are picked up automatically)."""
    return request.param


def test_algorithm_conforms_to_spec(algorithm_name):
    report = check_algorithm(algorithm_name)
    failures = [
        outcome for outcome in report.outcomes
        if outcome.violations and not outcome.waived]
    assert report.passed, (
        f"{algorithm_name} violated: "
        + "; ".join(str(violation) for outcome in failures
                    for violation in outcome.violations[:3]))


def test_spec_checker_set_is_derived(algorithm_name):
    spec = get_spec(algorithm_name)
    checkers = spec.checkers()
    for name in UNIVERSAL_CHECKERS:
        assert name in checkers
    # Exactly one of the work-conservation pair applies.
    assert (("work-conservation" in checkers)
            != ("idle-legality" in checkers))
    # Every waiver must reference a checker the spec actually runs.
    for waived in spec.waivers:
        assert waived in checkers, (
            f"{algorithm_name} waives {waived!r} which its spec never "
            "runs")


def test_waived_checkers_still_report(algorithm_name):
    """A waiver must not silence the checker: outcomes carry the
    violations alongside the waiver text."""
    report = check_algorithm(algorithm_name)
    spec = get_spec(algorithm_name)
    for outcome in report.outcomes:
        if spec.is_waived(outcome.checker):
            assert outcome.waived == spec.waivers[outcome.checker]
