"""Regression pins for every documented conformance waiver.

A waiver is a named, accepted deviation from a textbook bound.  These
tests hold each one in place from *both* sides: the deviation must
still occur (otherwise the waiver is stale and should be removed) and
it must stay inside the looser bound the waiver documents (otherwise
the implementation drifted further than the waiver covers).
"""

import pytest

from repro.conformance import check_algorithm
from repro.conformance.scenarios import make_scenario
from repro.sched.registry import available_algorithms, get_spec


def _gps_outcome(report):
    for outcome in report.outcomes:
        if outcome.checker == "gps-delay-bound":
            return outcome
    raise AssertionError("gps-delay-bound did not run")


@pytest.fixture(scope="module")
def backlogged_scenario():
    return make_scenario("backlogged")


def test_wfq_scfq_waiver_still_needed(backlogged_scenario):
    """The SCFQ clock must still exceed the Parekh-Gallager bound on
    the pinned scenario — if this starts passing, drop the waiver."""
    report = check_algorithm("wfq", scenario=backlogged_scenario)
    outcome = _gps_outcome(report)
    assert outcome.violations, (
        "wfq met the 1*L_max/R bound; the SCFQ waiver is stale")
    assert outcome.waived
    assert report.passed


def test_wfq_scfq_excess_within_golestani_bound(backlogged_scenario):
    """Golestani's SCFQ bound is (F-1)*L_max/R for F flows; the
    observed excess beyond GPS must stay inside it."""
    report = check_algorithm("wfq", scenario=backlogged_scenario)
    flow_count = len(backlogged_scenario.flows)
    worst = max(violation.details["excess_lmax"]
                for violation in _gps_outcome(report).violations)
    assert worst <= flow_count - 1, (
        f"wfq exceeded the Golestani envelope: {worst:.2f} L_max/R")


@pytest.mark.parametrize("name", ["wf2q+", "wcwfq"])
def test_wf2q_clock_waiver_still_needed(name, backlogged_scenario):
    """The O(1) approximate virtual clock must still lag exact GPS on
    the pinned scenario — if this starts passing, drop the waiver."""
    report = check_algorithm(name, scenario=backlogged_scenario)
    outcome = _gps_outcome(report)
    assert outcome.violations, (
        f"{name} met the 1*L_max/R bound; the clock waiver is stale")
    assert outcome.waived
    assert report.passed


@pytest.mark.parametrize("name", ["wf2q+", "wcwfq"])
def test_wf2q_excess_within_two_lmax(name, backlogged_scenario):
    """The documented envelope for the approximate clock: at most
    2 * L_max/R beyond the GPS fluid finish."""
    report = check_algorithm(name, scenario=backlogged_scenario)
    worst = max(violation.details["excess_lmax"]
                for violation in _gps_outcome(report).violations)
    assert worst <= 2.0 + 1e-9, (
        f"{name} exceeded the waived 2*L_max/R envelope: "
        f"{worst:.2f} L_max/R")


def test_every_registry_waiver_is_pinned_here():
    """Each waiver in the registry must name this file, and each
    (algorithm, checker) pair must be one this module exercises."""
    pinned = {("wfq", "gps-delay-bound"), ("wf2q+", "gps-delay-bound"),
              ("wcwfq", "gps-delay-bound")}
    found = set()
    for name in available_algorithms():
        for checker, text in get_spec(name).waivers.items():
            assert "tests/conformance/test_waivers.py" in text, (
                f"waiver {name}/{checker} lacks a regression-test "
                "pointer")
            found.add((name, checker))
    assert found == pinned, (
        f"waiver set changed ({found ^ pinned}); update the pins")
