"""Tests for the evaluation harness: every table generates and its key
properties (the paper's qualitative claims) hold."""

import pytest

from repro.experiments import (alms_table, approx_structures_table,
                               clock_table, deviation_sweep, example_table,
                               fair_queue_table, measured_cycles_per_op,
                               pipeline_table, rate_limit_table, rate_table,
                               scalability_table, sram_table,
                               sublist_ablation_table,
                               trigger_ablation_table)
from repro.experiments.runner import Table


def test_table_formatting():
    table = Table("title", ["a", "b"])
    table.add_row(1, 2.5)
    table.add_note("a note")
    text = table.to_text()
    assert "title" in text
    assert "2.5" in text
    assert "note: a note" in text
    assert table.column("a") == [1]


def test_table_row_width_checked():
    table = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_fig2_example_table():
    table = example_table()
    designs = table.column("design")
    deviations = dict(zip(designs, table.column(
        "max_deviation_vs_ideal")))
    assert deviations["pieo"] == 0
    assert deviations["two_pifo"] > 0
    assert deviations["single_pifo_finish"] > 0


def test_fig2_deviation_sweep_grows():
    table = deviation_sweep(sizes=(8, 64), trials=2)
    pieo = table.column("pieo_max_dev")
    two_pifo = table.column("two_pifo_max_dev")
    assert pieo == [0, 0]
    assert two_pifo[1] > two_pifo[0]


def test_fig8_table_shapes():
    table = alms_table()
    sizes = table.column("size")
    pieo = table.column("pieo_alms_pct")
    pifo = table.column("pifo_alms_pct")
    assert pieo == sorted(pieo)
    assert pifo == sorted(pifo)
    row_1k = sizes.index(1024)
    assert pifo[row_1k] == pytest.approx(64.0, abs=2)
    assert not table.column("pifo_fits")[sizes.index(2048)]
    assert table.column("pieo_fits")[sizes.index(30000)]


def test_fig9_table_modest_consumption():
    table = sram_table()
    assert all(table.column("fits"))
    assert max(table.column("sram_pct")) < 20
    assert all(overhead <= 2.2 for overhead in table.column("overhead_x"))


def test_fig10_table_anchors():
    table = clock_table()
    sizes = table.column("size")
    pieo = table.column("pieo_mhz")
    assert pieo[sizes.index(30000)] == pytest.approx(80, abs=2)
    assert table.column("pifo_mhz")[sizes.index(1024)] == pytest.approx(
        57, abs=2)
    assert pieo == sorted(pieo, reverse=True)


def test_scheduling_rate_table():
    table = rate_table()
    assert all(table.column("meets_mtu_100g"))
    asic_row = [row for row in table.rows if "ASIC" in row[1]][0]
    assert asic_row[5] == pytest.approx(4.0)


def test_measured_cycles_is_exactly_four():
    assert measured_cycles_per_op(capacity=256,
                                  operations=500) == pytest.approx(4.0)


def test_scalability_table_claim():
    table = scalability_table()
    stratix_row = table.rows[0]
    factor = stratix_row[4]
    assert factor > 30


def test_fig11_table_accuracy():
    table = rate_limit_table(sweep_gbps=(1.0, 4.0), duration=0.006)
    for error in table.column("error_pct"):
        assert error < 2.0


def test_fig12_table_fairness():
    table = fair_queue_table(sweep_gbps=(2.0,), duration=0.006)
    assert all(jain > 0.99 for jain in table.column("jain_index"))


def test_fig12_weighted_variant():
    table = fair_queue_table(sweep_gbps=(2.0,), duration=0.006,
                             flow_weights=[1.0, 2.0])
    assert all(jain > 0.99 for jain in table.column("jain_index"))


def test_ablation_sublist_table():
    table = sublist_ablation_table(capacity=1024,
                                   sizes=(8, 32, 128),
                                   operations=800)
    assert all(cycles == pytest.approx(4.0)
               for cycles in table.column("cycles_per_op"))
    lanes = table.column("lanes")
    assert lanes[1] == min(lanes)  # sqrt(1024) = 32 minimizes lanes


def test_trigger_ablation_table():
    table = trigger_ablation_table()
    rows = {row[0]: row for row in table.rows}
    assert rows["output"][1] == 0          # adapts in the first window
    assert rows["input"][1] == "never"     # stale stamps persist
    assert rows["input"][2] < 1.5          # still near the old 1 Gbps


def test_pipeline_table():
    table = pipeline_table()
    cycles = dict(zip(table.column("design"),
                      table.column("cycles_per_op")))
    assert cycles["pieo non-pipelined (prototype)"] == 4
    assert cycles["pieo partially pipelined"] == pytest.approx(2.0,
                                                               abs=0.01)
    assert all(table.column("mtu_100g_ok"))


def test_approx_structures_table():
    table = approx_structures_table(size=100)
    rows = {(row[0], row[1]): row[2] for row in table.rows}
    assert rows[("pieo (exact)", "-")] == 0
    # Calendar queue error shrinks as buckets grow.
    assert rows[("calendar_queue", 64)] <= rows[("calendar_queue", 4)]
    # Every approximate structure deviates somewhere.
    assert any(value > 0 for key, value in rows.items()
               if key[0] != "pieo (exact)")
