"""Tests for the end-to-end shaping and datastructure comparisons."""

import math

import pytest

from repro.baselines.pifo_scheduler import PifoShapingScheduler
from repro.experiments.end_to_end_shaping import (LIMITS_GBPS,
                                                  shaping_comparison_table)
from repro.experiments.structure_comparison import structure_comparison_table
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


def test_shaping_comparison_table():
    table = shaping_comparison_table()
    rows = {row[0]: row for row in table.rows}
    # PIEO matches every configured limit.
    for index, limit in enumerate(LIMITS_GBPS):
        assert rows["pieo"][index + 1] == pytest.approx(limit, rel=0.05)
    # PIFO and FIFO run at line rate (10 G total).
    assert rows["pifo"][-1] == pytest.approx(10.0, rel=0.02)
    assert rows["fifo"][-1] == pytest.approx(10.0, rel=0.02)
    # ... and individually violate their limits.
    assert rows["pifo"][1] > LIMITS_GBPS[0] * 1.5
    assert rows["fifo"][1] > LIMITS_GBPS[0] * 1.5


def test_structure_comparison_table():
    table = structure_comparison_table(size=256, operations=150)
    rows = {row[0]: row for row in table.rows}
    pieo = rows["pieo (sqrt-N design)"]
    assert pieo[1] == pieo[2] == pieo[3] == 4  # constant 4 cycles
    heap = rows["p-heap"]
    assert heap[1] < heap[2] < heap[3]  # search cost explodes
    assert heap[3] > 10 * pieo[3]


def test_pifo_shaping_scheduler_mechanics():
    scheduler = PifoShapingScheduler(link_rate_bps=10e9)
    flow = scheduler.add_flow(FlowQueue("f", rate_bps=1e9))
    scheduler.on_arrival("f", Packet("f"), now=0.0)
    scheduler.on_arrival("f", Packet("f"), now=0.0)
    # Dequeue succeeds immediately even though the send time is in the
    # future — the PIFO cannot defer.
    first = scheduler.schedule(now=0.0)
    assert len(first) == 1
    second = scheduler.schedule(now=0.0)
    assert len(second) == 1
    assert flow.is_empty
    assert math.isinf(scheduler.next_eligible_time(0.0))
