"""Sweep heartbeat through ``run_sweep``: sequential and pooled paths.

The heartbeat observes only — results must stay identical with or
without one, on both the ``jobs=1`` in-process path and the ``jobs>1``
pool path.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.fig12_fair_queue import fair_queue_table
from repro.experiments.runner import run_sweep
from repro.obs import Tracer
from repro.obs.runtime import SweepHeartbeat

FAST = dict(sweep_gbps=(1.0, 2.0), duration=0.001)


def square_worker(spec):
    """Module level so the ``jobs=4`` pool can pickle it."""
    index, value = spec
    return value * value


def failing_worker(spec):
    index, value = spec
    if index == 1:
        raise RuntimeError(f"point {index} exploded")
    return value


def heartbeat_fields(tracer):
    return [event.fields for event in tracer.events
            if event.fields.get("label") == "sweep.heartbeat"]


SPECS = [(index, value) for index, value in enumerate([3, 5, 7, 9])]


class TestRunSweepHeartbeat:
    def test_results_unchanged_by_heartbeat_jobs1(self):
        plain = run_sweep(square_worker, SPECS, jobs=1)
        pulse = SweepHeartbeat(stream=io.StringIO())
        observed = run_sweep(square_worker, SPECS, jobs=1,
                             heartbeat=pulse)
        assert observed == plain == [9, 25, 49, 81]
        assert pulse.done == 4
        assert pulse.failures == 0

    def test_results_unchanged_by_heartbeat_jobs4(self):
        plain = run_sweep(square_worker, SPECS, jobs=4)
        pulse = SweepHeartbeat(stream=io.StringIO())
        observed = run_sweep(square_worker, SPECS, jobs=4,
                             heartbeat=pulse)
        assert observed == plain == [9, 25, 49, 81]
        assert pulse.done == 4
        assert pulse.jobs == 4

    def test_stream_reports_every_point_jobs1(self):
        stream = io.StringIO()
        run_sweep(square_worker, SPECS, jobs=1,
                  heartbeat=SweepHeartbeat(stream=stream))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[sweep] starting 4 point(s), jobs=1"
        assert sum("done | point" in line for line in lines) == 4
        assert "all workers healthy" in lines[-1]

    def test_stream_reports_every_point_jobs4(self):
        stream = io.StringIO()
        run_sweep(square_worker, SPECS, jobs=4,
                  heartbeat=SweepHeartbeat(stream=stream))
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[sweep] starting 4 point(s), jobs=4"
        assert sum("done | point" in line for line in lines) == 4
        assert "all workers healthy" in lines[-1]

    def test_trace_marks_emitted(self):
        tracer = Tracer()
        run_sweep(square_worker, SPECS, jobs=1,
                  heartbeat=SweepHeartbeat(stream=io.StringIO(),
                                           tracer=tracer))
        phases = [fields["phase"]
                  for fields in heartbeat_fields(tracer)]
        assert phases == ["begin"] + ["point"] * 4 + ["finish"]

    def test_worker_failure_reported_then_raised_jobs1(self):
        stream = io.StringIO()
        pulse = SweepHeartbeat(stream=stream)
        with pytest.raises(RuntimeError, match="exploded"):
            run_sweep(failing_worker, SPECS, jobs=1, heartbeat=pulse)
        assert pulse.failures == 1
        assert "FAILED" in stream.getvalue()

    def test_worker_failure_reported_then_raised_jobs4(self):
        stream = io.StringIO()
        pulse = SweepHeartbeat(stream=stream)
        with pytest.raises(RuntimeError, match="exploded"):
            run_sweep(failing_worker, SPECS, jobs=4, heartbeat=pulse)
        assert pulse.failures == 1
        assert "FAILED" in stream.getvalue()

    def test_no_heartbeat_path_untouched(self):
        assert run_sweep(square_worker, SPECS, jobs=1) \
            == [9, 25, 49, 81]


class TestExperimentHeartbeat:
    def test_fig12_table_identical_with_heartbeat(self):
        plain = fair_queue_table(**FAST).to_text()
        observed = fair_queue_table(
            heartbeat=SweepHeartbeat(stream=io.StringIO()),
            **FAST).to_text()
        assert observed == plain

    def test_fig12_trace_identical_heartbeat_marks_extra(self):
        """Heartbeat marks ride alongside the sweep's own events; the
        non-heartbeat events stay byte-identical."""

        def run(heartbeat):
            tracer = Tracer()
            fair_queue_table(tracer=tracer,
                             heartbeat=heartbeat, **FAST)
            return tracer

        plain = run(None)
        pulsed = run(SweepHeartbeat(stream=io.StringIO()))
        strip = [event.to_dict() for event in pulsed.events
                 if event.fields.get("label") != "sweep.heartbeat"]
        assert strip == [event.to_dict() for event in plain.events]

    def test_fig12_heartbeat_counts_points(self):
        stream = io.StringIO()
        tracer = Tracer()
        pulse = SweepHeartbeat(stream=stream, tracer=tracer)
        fair_queue_table(heartbeat=pulse, **FAST)
        assert pulse.done == len(FAST["sweep_gbps"])
        assert sum(1 for fields in heartbeat_fields(tracer)
                   if fields["phase"] == "point") == 2
