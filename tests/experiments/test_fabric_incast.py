"""Two-tier fabric incast: the single-switch cross-check.

The fabric experiment must reproduce the single-switch incast's shape
from multi-switch parts: hot-link goodput pinned at ~10 Gbps, drops
monotone in buffer size, all loss at the ToR's receiver port, none on
the 40 Gbps trunk."""

import io

from repro.experiments.__main__ import main
from repro.experiments.fabric_incast import (ACCESS_GBPS, RECEIVER,
                                             SENDER_GBPS, SENDERS,
                                             fabric_incast_table)
from repro.experiments.incast import incast_table
from repro.obs import Tracer

DURATION = 0.001
SWEEP = (8, 64)


def _run(*argv):
    return main(["prog", *argv])


def _table(jobs=1, event_queue="reference", **kwargs):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = fabric_incast_table(buffer_kib_sweep=SWEEP,
                                duration=DURATION, tracer=tracer,
                                event_queue=event_queue, jobs=jobs,
                                **kwargs)
    return table.to_text(), sink.getvalue()


def test_sharded_run_matches_sequential_bytes():
    sequential = _table(jobs=1)
    assert _table(jobs=2) == sequential
    assert sequential[1].count('"kind":"mark"') == len(SWEEP)


def test_calendar_event_queue_matches_reference_bytes():
    assert _table(event_queue="calendar") == _table()


def test_matches_single_switch_incast_shape():
    """The cross-check the module docstring promises, against the
    actual single-switch experiment run at the same sweep."""
    fabric = fabric_incast_table(buffer_kib_sweep=(8, 32, 128),
                                 duration=DURATION)
    single = incast_table(buffer_kib_sweep=(8, 32, 128),
                          duration=DURATION)
    # Offered load identical by construction.
    assert SENDERS * SENDER_GBPS == 2 * ACCESS_GBPS
    fabric_drops = [row[3] for row in fabric.rows]
    single_drops = [row[3] for row in single.rows]
    # Both lose packets at the small buffer and recover monotonically.
    assert fabric_drops[0] > 0 and single_drops[0] > 0
    assert sorted(fabric_drops, reverse=True) == fabric_drops
    assert sorted(single_drops, reverse=True) == single_drops
    for row in fabric.rows:
        # Hot link saturated: goodput within 15% of line rate.
        assert row[6] > 0.85 * ACCESS_GBPS
        # Every drop is charged to the ToR's receiver port...
        assert row[4] == row[3]
        # ...and the trunk tier never drops.
        assert row[5] == 0


def test_cli_fabric_incast(capsys):
    assert _run("fabric-incast", "--duration", "0.0005",
                "--drop-policy", "longest-queue") == 0
    out = capsys.readouterr().out
    assert "Fabric incast" in out
    assert "policy=longest-queue" in out
    assert RECEIVER in out
