"""CLI behaviour: error paths, backend listing, and the observability
flags (``--trace`` / ``--metrics`` / ``--duration``)."""

import json

import pytest

from repro.core.backends import available_backends
from repro.experiments.__main__ import main
from repro.obs import EVENT_KINDS, read_jsonl


def _run(*argv):
    return main(["prog", *argv])


def test_unknown_experiment_returns_2(capsys):
    assert _run("figTHIRTEEN") == 2
    out = capsys.readouterr().out
    assert "unknown experiment" in out
    assert "fig11" in out  # the error lists the valid choices


def test_unknown_backend_returns_2(capsys):
    assert _run("--backend", "abacus", "rate") == 2
    out = capsys.readouterr().out
    assert "abacus" in out
    assert "reference" in out  # suggests the registered names


def test_list_backends_lists_every_registered_backend(capsys):
    assert _run("--list-backends") == 0
    out = capsys.readouterr().out
    for name in available_backends():
        assert name in out
    assert "traced" in out  # the observability decorator is registered


def test_nonpositive_duration_returns_2(capsys):
    assert _run("fig11", "--duration", "0") == 2
    assert "positive" in capsys.readouterr().out
    assert _run("fig11", "--duration", "-1") == 2


def test_trace_and_metrics_files_are_written_and_parse(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    assert _run("fig11", "--duration", "0.001",
                "--trace", str(trace_path),
                "--metrics", str(metrics_path)) == 0
    captured = capsys.readouterr()
    assert "Fig. 11" in captured.out          # the table still prints
    assert "trace:" in captured.err           # summary goes to stderr
    assert "metrics ->" in captured.err

    records = read_jsonl(trace_path)
    assert len(records) > 100
    kinds = {record["kind"] for record in records}
    assert kinds <= set(EVENT_KINDS)
    assert {"arrival", "departure", "enqueue", "dequeue",
            "mark"} <= kinds
    # Every line is strict JSON with a time and a kind.
    for record in records:
        assert "t" in record and "kind" in record

    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["engine.departures"] > 0
    assert "sched.queue_depth" in metrics["gauges"]
    assert "engine.schedule_us" in metrics["histograms"]


def test_sweep_marks_delimit_every_sweep_point(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig12", "--duration", "0.001",
                "--trace", str(trace_path)) == 0
    marks = [record for record in read_jsonl(trace_path)
             if record["kind"] == "mark"]
    assert len(marks) == 5  # one per Fig. 12 sweep point
    assert all(record["label"] == "fig12.sweep" for record in marks)


def test_trace_file_closed_even_when_a_key_is_unknown(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("nonsense", "--trace", str(trace_path)) == 2
    assert trace_path.exists()  # opened, then closed by the finally


def test_metrics_flag_alone_works(tmp_path):
    metrics_path = tmp_path / "metrics.json"
    assert _run("fig12", "--duration", "0.001",
                "--metrics", str(metrics_path)) == 0
    assert json.loads(metrics_path.read_text())["counters"]


def test_flags_do_not_leak_into_cycle_accurate_experiments(tmp_path):
    """fig8 ignores --trace/--duration (its tables are cycle-accurate,
    not simulation-driven) but must still run cleanly with them set."""
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig8", "--duration", "0.5",
                "--trace", str(trace_path)) == 0
    assert read_jsonl(trace_path) == []  # nothing traced, file valid


@pytest.mark.parametrize("key", ["fig11", "fig12"])
def test_duration_override_reaches_the_simulation(key, capsys):
    assert _run(key, "--duration", "0.001") == 0
    assert capsys.readouterr().out  # table printed without error


def test_analyze_requires_trace(capsys):
    assert _run("fig11", "--analyze") == 2
    assert "--trace" in capsys.readouterr().out


def test_analyze_summarizes_after_the_run(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig11", "--duration", "0.001",
                "--trace", str(trace_path), "--analyze") == 0
    out = capsys.readouterr().out
    assert "per-flow latency attribution" in out
    assert "fig11.sweep" in out
    assert "delivered" in out


def test_heartbeat_flag_reports_liveness(capsys):
    assert _run("fig12", "--duration", "0.001", "--heartbeat") == 0
    err = capsys.readouterr().err
    assert "[sweep] starting" in err
    assert "all workers healthy" in err


def test_heartbeat_marks_land_in_trace(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig12", "--duration", "0.001", "--heartbeat",
                "--trace", str(trace_path)) == 0
    events = read_jsonl(trace_path)
    beats = [event for event in events
             if event.get("label") == "sweep.heartbeat"]
    assert beats, "expected sweep.heartbeat marks in the trace"
    assert all(event["kind"] == "mark" for event in beats)


def test_no_heartbeat_keeps_trace_clean(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig12", "--duration", "0.001",
                "--trace", str(trace_path)) == 0
    events = read_jsonl(trace_path)
    assert not any(event.get("label") == "sweep.heartbeat"
                   for event in events)


def test_profile_runtime_to_explicit_file(tmp_path, capsys):
    dest = tmp_path / "profile.json"
    assert _run("fig12", "--duration", "0.001",
                "--profile-runtime", str(dest)) == 0
    record = json.loads(dest.read_text())
    assert record["kind"] == "runtime_profile"
    assert record["phases"].get("fig12", {}).get("count") == 1
    assert f"runtime profile -> {dest}" in capsys.readouterr().err


def test_profile_runtime_defaults_beside_trace(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fig12", "--duration", "0.001",
                "--trace", str(trace_path),
                "--profile-runtime") == 0
    sidecar = tmp_path / "trace.jsonl.runtime.json"
    assert sidecar.exists()
    record = json.loads(sidecar.read_text())
    assert record["schema_version"] == 1


def test_profile_runtime_without_trace_prints_text(capsys):
    assert _run("fig12", "--duration", "0.001",
                "--profile-runtime") == 0
    err = capsys.readouterr().err
    assert "runtime profile:" in err
    assert "attributed to repro components" in err
