"""Sweep determinism: --jobs N and --event-queue leave output identical.

The contract (see :mod:`repro.experiments.runner`) is byte-identity:
the rendered table AND the merged JSONL trace stream of a sharded sweep
must equal the sequential run's, and the calendar event queue must
reproduce the reference heap's results exactly.  Short durations keep
the workloads CI-sized; identity is duration-independent because every
sweep point reseeds its packet-id namespace from its index.
"""

import io

import pytest

from repro.core.backends import available_backends
from repro.experiments.fig11_rate_limit import rate_limit_table
from repro.experiments.fig12_fair_queue import fair_queue_table
from repro.experiments.incast import incast_table
from repro.experiments.runner import (POINT_ID_STRIDE, point_seed,
                                      run_sweep)
from repro.obs import Tracer

DURATION = 0.001


def _fig12(jobs, event_queue):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = fair_queue_table(sweep_gbps=(0.5, 2.0, 8.0),
                            duration=DURATION, tracer=tracer,
                            event_queue=event_queue, jobs=jobs)
    return table.to_text(), sink.getvalue()


def _fig11(jobs, event_queue):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = rate_limit_table(sweep_gbps=(0.5, 4.0), duration=DURATION,
                             tracer=tracer, event_queue=event_queue,
                             jobs=jobs)
    return table.to_text(), sink.getvalue()


def test_fig12_sharded_matches_sequential_bytes():
    sequential_text, sequential_trace = _fig12(1, "reference")
    sharded_text, sharded_trace = _fig12(2, "reference")
    assert sharded_text == sequential_text
    assert sharded_trace == sequential_trace
    assert sequential_trace.count('"kind":"mark"') == 3  # one per point


def test_fig12_calendar_matches_reference_bytes():
    reference_text, reference_trace = _fig12(1, "reference")
    calendar_text, calendar_trace = _fig12(2, "calendar")
    assert calendar_text == reference_text
    assert calendar_trace == reference_trace


def test_fig11_sharded_calendar_matches_sequential_reference():
    sequential = _fig11(1, "reference")
    assert _fig11(2, "reference") == sequential
    assert _fig11(2, "calendar") == sequential


def test_point_seed_contract():
    assert point_seed(0) == 0
    assert point_seed(3) == 3 * POINT_ID_STRIDE
    with pytest.raises(ValueError):
        point_seed(-1)


def test_run_sweep_preserves_spec_order():
    specs = list(range(7))
    assert run_sweep(_square, specs, jobs=1) == [n * n for n in specs]
    assert run_sweep(_square, specs, jobs=3) == [n * n for n in specs]


def _square(n):
    return n * n


# ----------------------------------------------------------------------
# Multi-port incast: the same byte-identity contract must hold with a
# shared buffer in the loop, for every ordered-list backend.
# ----------------------------------------------------------------------
def _incast(jobs, event_queue, backend):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = incast_table(buffer_kib_sweep=(8, 32), duration=5e-4,
                         tracer=tracer, event_queue=event_queue,
                         jobs=jobs, backend=backend)
    return table.to_text(), sink.getvalue()


@pytest.mark.parametrize("backend", available_backends())
def test_incast_byte_identical_across_queues_and_jobs(backend):
    """4-port incast output is a function of the sweep spec alone:
    substituting the calendar event queue for the reference heap,
    sharding over 4 workers, or both, must reproduce the sequential
    reference run byte for byte — under every list backend."""
    baseline_text, baseline_trace = _incast(1, "reference", backend)
    assert baseline_trace.count('"kind":"mark"') == 2  # one per point
    for jobs, event_queue in ((4, "reference"), (1, "calendar"),
                              (4, "calendar")):
        text, trace = _incast(jobs, event_queue, backend)
        assert text == baseline_text, (
            f"{backend}: table diverged at jobs={jobs}, "
            f"event_queue={event_queue}")
        assert trace == baseline_trace, (
            f"{backend}: trace diverged at jobs={jobs}, "
            f"event_queue={event_queue}")
