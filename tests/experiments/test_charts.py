"""Tests for the ASCII figure renderer."""

import pytest

from repro.experiments.charts import (ascii_chart, fig8_chart, fig10_chart,
                                      fig11_chart)


def test_basic_chart_geometry():
    chart = ascii_chart({"s": [0.0, 5.0, 10.0]}, x_labels=["a", "b", "c"],
                        title="T", height=5, y_label="units")
    lines = chart.splitlines()
    assert lines[0] == "T"
    # title + 5 rows + axis + labels + legend
    assert len(lines) == 9
    assert "units" in lines[-1]
    assert "* = s" in lines[-1]
    # Max value sits on the top plot row, min on the bottom one.
    assert "*" in lines[1]
    assert "*" in lines[5]


def test_chart_clipping():
    chart = ascii_chart({"s": [50.0, 500.0]}, x_labels=["a", "b"],
                        height=4, y_max=100.0)
    top_row = chart.splitlines()[0]
    assert "*" in top_row  # the 500 is clipped to the top
    assert "100" in top_row


def test_overlapping_markers_merge():
    chart = ascii_chart({"x": [1.0], "y": [1.0]}, x_labels=["a"],
                        height=3)
    assert "&" in chart


def test_series_length_validated():
    with pytest.raises(ValueError):
        ascii_chart({"s": [1.0]}, x_labels=["a", "b"])
    with pytest.raises(ValueError):
        ascii_chart({"s": [1.0]}, x_labels=["a"], height=1)


def test_empty_series_returns_title():
    assert ascii_chart({}, x_labels=[], title="nothing") == "nothing"


def test_fig8_chart_shows_clipped_pifo():
    chart = fig8_chart()
    assert "pieo" in chart and "pifo" in chart
    assert "30K" in chart
    # PIFO hits the 100% ceiling row for most sizes.
    top_row = chart.splitlines()[1]
    assert "o" in top_row


def test_fig10_chart_renders():
    chart = fig10_chart()
    assert "MHz" in chart
    assert "1K" in chart and "33K" in chart  # 32768 rounds to 33K


def test_fig11_chart_markers_coincide():
    chart = fig11_chart(duration=0.004)
    # Achieved == configured everywhere -> every point is a merged '&'.
    plot_rows = chart.splitlines()[1:-3]
    assert any("&" in row for row in plot_rows)
    assert not any("*" in row or "o" in row for row in plot_rows)
