"""The end-to-end FCT experiment: sharding/event-queue byte-identity,
the fair-queueing-vs-FIFO policy gap, and the CLI surface."""

import io

import pytest

from repro.experiments.__main__ import main
from repro.experiments.fct import fct_table
from repro.net.workload import WORKLOADS
from repro.obs import Tracer, read_jsonl

DURATION = 0.002
LOADS = (0.3, 0.7)


def _run(*argv):
    return main(["prog", *argv])


def _table(jobs=1, event_queue="reference", loads=LOADS, **kwargs):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = fct_table(loads=loads, duration=DURATION, tracer=tracer,
                      event_queue=event_queue, jobs=jobs, **kwargs)
    return table.to_text(), sink.getvalue()


def test_sharded_run_matches_sequential_bytes():
    sequential = _table(jobs=1)
    assert _table(jobs=4) == sequential
    # One mark per sweep point, regardless of sharding.
    assert sequential[1].count('"kind":"mark"') == len(LOADS)


def test_calendar_event_queue_matches_reference_bytes():
    assert _table(event_queue="calendar") == _table()
    assert _table(jobs=4, event_queue="calendar") == _table()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_every_workload_runs(workload):
    table, _ = _table(loads=(0.4,), workload=workload)
    assert "workload=" + workload in table
    row = [line for line in table.splitlines() if "0.4" in line][0]
    fields = row.split()
    if workload != "data-mining":
        # data-mining's mean flow is megabytes: at a 2 ms horizon the
        # first Poisson arrival usually lands past the end of the run.
        assert int(fields[1]) > 0 and int(fields[2]) > 0


def test_fair_queueing_protects_short_flows_vs_fifo():
    """The experiment's reason to exist: under FIFO, short flows queue
    behind long ones and their p99 slowdown blows up; DRR keeps them
    near ideal.  Same seed, same workload, same fabric — only the
    per-port policy differs."""
    drr = fct_table(loads=(0.8,), duration=0.004, algorithm="drr")
    fcfs = fct_table(loads=(0.8,), duration=0.004, algorithm="fcfs")
    short_p99 = {table.title.split("algorithm=")[1].split(",")[0]:
                 float(table.rows[0][6])
                 for table in (drr, fcfs)}
    assert short_p99["fcfs"] > 2 * short_p99["drr"]


def test_slowdown_is_at_least_one():
    table = fct_table(loads=(0.2,), duration=DURATION)
    row = table.rows[0]
    # p50 <= p99 and nothing beats the ideal FCT.
    for p50, p99 in ((row[3], row[4]), (row[5], row[6])):
        assert 1.0 <= p50 <= p99


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_fct_runs_and_prints_table(capsys):
    assert _run("fct", "--duration", "0.001") == 0
    out = capsys.readouterr().out
    assert "FCT on leaf-spine" in out
    assert "short_p99" in out


def test_cli_fct_flags_reach_the_experiment(capsys):
    assert _run("fct", "--duration", "0.001", "--algorithm", "sfq",
                "--workload", "web-search", "--drop-policy",
                "longest-queue") == 0
    out = capsys.readouterr().out
    assert "algorithm=sfq" in out
    assert "workload=web-search" in out
    assert "policy=longest-queue" in out


def test_cli_unknown_workload_returns_2(capsys):
    assert _run("fct", "--workload", "mystery") == 2
    out = capsys.readouterr().out
    assert "mystery" in out
    for name in WORKLOADS:
        assert name in out  # suggests the registered names


def test_cli_traced_fct_carries_switch_labels(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("fct", "--duration", "0.001", "--jobs", "2",
                "--trace", str(trace_path)) == 0
    records = read_jsonl(trace_path)
    switches = {record.get("switch") for record in records
                if record["kind"] == "departure"}
    # Host NICs and both switch tiers all label their events.
    assert any(s.startswith("h") for s in switches)
    assert any(s.startswith("l") for s in switches)
    assert any(s.startswith("sp") for s in switches)
    marks = [record for record in records if record["kind"] == "mark"]
    assert all(record["label"] == "fct.sweep" for record in marks)
