"""Multi-port incast experiment: sweep determinism, parameterisation,
and the CLI flags that drive it."""

import io

import pytest

from repro.experiments.incast import (DEFAULT_BUFFER_KIB, HOT_PORT,
                                      build_incast, incast_table)
from repro.experiments.__main__ import main
from repro.obs import Tracer, read_jsonl
from repro.sim.buffer import available_drop_policies
from repro.sim.events import Simulator
from repro.sim.packet import reset_packet_ids

DURATION = 0.001
SWEEP = (8, 32)


def _run(*argv):
    return main(["prog", *argv])


def _table(jobs=1, event_queue="reference", **kwargs):
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    table = incast_table(buffer_kib_sweep=SWEEP, duration=DURATION,
                         tracer=tracer, event_queue=event_queue,
                         jobs=jobs, **kwargs)
    return table.to_text(), sink.getvalue()


def test_sharded_run_matches_sequential_bytes():
    sequential = _table(jobs=1)
    assert _table(jobs=2) == sequential
    # One mark per sweep point, regardless of sharding.
    assert sequential[1].count('"kind":"mark"') == len(SWEEP)


def test_calendar_event_queue_matches_reference_bytes():
    assert _table(event_queue="calendar") == _table()


def test_small_buffer_drops_large_buffer_does_not():
    reset_packet_ids()
    # The hot backlog grows at ~10 Gbps, i.e. ~1.25 MB over the run —
    # 2 MiB rides it out, 4 KiB cannot.
    table = incast_table(buffer_kib_sweep=(4, 2048), duration=DURATION)
    rows = table.rows
    assert rows[0][3] > 0            # 4 KiB: drops
    assert rows[1][3] == 0           # 2 MiB: rides out the burst
    # Same offered load on both rows.
    assert rows[0][1] == rows[1][1]


def test_longest_queue_charges_drops_to_the_hot_port():
    reset_packet_ids()
    table = incast_table(buffer_kib_sweep=(32,), duration=DURATION,
                         drop_policy="longest-queue")
    row = table.rows[0]
    drops, hot_drops, evicted = row[3], row[4], row[5]
    assert drops > 0
    assert hot_drops == drops        # push-out lands on the hog
    assert evicted > 0


def test_ports_parameter_scales_the_topology():
    reset_packet_ids()
    two = incast_table(buffer_kib_sweep=(64,), ports=2,
                       duration=DURATION)
    reset_packet_ids()
    six = incast_table(buffer_kib_sweep=(64,), ports=6,
                       duration=DURATION)
    # 8 hot + 2 per cold port senders at the same per-sender rate.
    assert six.rows[0][1] > two.rows[0][1]
    assert "2-port" in two.title and "6-port" in six.title


def test_algorithm_parameter_reaches_the_port_schedulers():
    reset_packet_ids()
    table = incast_table(buffer_kib_sweep=(32,), algorithm="wfq",
                         duration=DURATION)
    assert "algorithm=wfq" in table.title
    assert table.rows[0][2] > 0


def test_conservation_assertion_guards_every_point():
    """build_incast + manual run must balance arrivals against
    departures, drops, and residue (the same check _incast_point
    asserts)."""
    reset_packet_ids()
    sim = Simulator()
    dataplane = build_incast(sim, buffer_bytes=16 * 1024,
                             duration=DURATION)
    sim.run_until(DURATION)
    conservation = dataplane.conservation()
    assert conservation["balanced"]
    assert conservation["arrivals"] == (
        conservation["departures"] + conservation["drops"]
        + conservation["residue"])
    assert conservation["drops"] > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_incast_runs_and_prints_table(capsys):
    assert _run("incast", "--duration", "0.0005") == 0
    out = capsys.readouterr().out
    assert "Incast" in out
    for buffer_kib in DEFAULT_BUFFER_KIB:
        assert str(buffer_kib) in out


def test_cli_incast_flags_reach_the_experiment(capsys):
    assert _run("incast", "--duration", "0.0005", "--ports", "2",
                "--drop-policy", "red", "--algorithm", "wfq") == 0
    out = capsys.readouterr().out
    assert "2-port" in out
    assert "policy=red" in out
    assert "algorithm=wfq" in out


def test_cli_list_drop_policies(capsys):
    assert _run("--list-drop-policies") == 0
    out = capsys.readouterr().out
    for name in available_drop_policies():
        assert name in out


def test_cli_list_algorithms(capsys):
    assert _run("--list-algorithms") == 0
    out = capsys.readouterr().out
    assert "wf2q+" in out
    assert "drr" in out


def test_cli_unknown_drop_policy_returns_2(capsys):
    assert _run("incast", "--drop-policy", "coin-flip") == 2
    out = capsys.readouterr().out
    assert "coin-flip" in out
    assert "tail-drop" in out  # suggests registered names


def test_cli_unknown_algorithm_returns_2(capsys):
    assert _run("incast", "--algorithm", "magic") == 2
    assert "magic" in capsys.readouterr().out


def test_cli_invalid_ports_returns_2(capsys):
    assert _run("incast", "--ports", "0") == 2
    assert "--ports" in capsys.readouterr().out


def test_cli_traced_incast_carries_port_labels(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    assert _run("incast", "--duration", "0.0005",
                "--trace", str(trace_path)) == 0
    records = read_jsonl(trace_path)
    ports = {record.get("port") for record in records
             if record["kind"] == "drop"}
    assert HOT_PORT in ports
    marks = [record for record in records if record["kind"] == "mark"]
    assert len(marks) == len(DEFAULT_BUFFER_KIB)
    assert all(record["label"] == "incast.sweep" for record in marks)
