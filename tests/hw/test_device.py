"""Tests for device descriptions."""

import pytest

from repro.hw.device import ASIC, STRATIX_10, STRATIX_V


def test_stratix_v_matches_paper():
    """Section 6: 234 K ALMs, 52 Mbit SRAM, 40 Gbps interface; ~2500
    dual-port blocks of 20 Kbit."""
    assert STRATIX_V.alms == 234_000
    assert STRATIX_V.sram_bits == 52 * 1024 * 1024
    assert STRATIX_V.interface_gbps == 40.0
    assert STRATIX_V.sram_blocks == 2_500
    assert STRATIX_V.sram_block_bits == 20 * 1024


def test_fraction_helpers():
    assert STRATIX_V.alm_fraction(117_000) == pytest.approx(0.5)
    assert STRATIX_V.sram_fraction(STRATIX_V.sram_bits) == 1.0


def test_devices_are_frozen():
    with pytest.raises(Exception):
        STRATIX_V.alms = 1


def test_device_ordering_of_capability():
    assert STRATIX_10.alms > STRATIX_V.alms
    assert ASIC.base_clock_mhz >= 1_000
