"""Tests for the logic-resource model: paper anchors and scaling shape."""

import math

import pytest

from repro.hw.device import STRATIX_10, STRATIX_V
from repro.hw.resources import (logic_report, max_capacity, pieo_alms,
                                pieo_lanes, pifo_alms, pifo_lanes,
                                scalability_factor)


def test_pifo_anchor_64_percent_at_1k():
    """Section 6.1: PIFO consumes 64% of Stratix V ALMs at 1 K."""
    report = logic_report(1_024, STRATIX_V)
    assert report.pifo_percent == pytest.approx(64.0, abs=1.5)


def test_pifo_cannot_fit_2k():
    """Section 6.1: "we can't fit a PIFO with 2 K elements or more"."""
    assert not logic_report(2_048, STRATIX_V).pifo_fits
    assert max_capacity("pifo", STRATIX_V) < 2_048


def test_pieo_fits_30k():
    """Section 6.1: "we can easily fit a PIEO scheduler with 30 K"."""
    report = logic_report(30_000, STRATIX_V)
    assert report.pieo_fits
    assert report.pieo_percent < 80.0


def test_scalability_claim_over_30x():
    assert scalability_factor(STRATIX_V) > 30.0


def test_pifo_scales_linearly():
    assert pifo_alms(2_000) - pifo_alms(1_000) == pytest.approx(
        pifo_alms(3_000) - pifo_alms(2_000))
    assert pifo_lanes(4_096) == 4 * pifo_lanes(1_024)


def test_pieo_scales_as_sqrt():
    """Quadrupling N should roughly double PIEO's lane count."""
    ratio = pieo_lanes(4 * 4_096) / pieo_lanes(4_096)
    assert 1.8 < ratio < 2.2


def test_pieo_sublinear_vs_pifo_crossover():
    """PIEO costs more than PIFO only at tiny sizes (if at all); by 1K
    PIEO is already far cheaper."""
    assert pieo_alms(1_024) < pifo_alms(1_024) / 4


def test_max_capacity_monotone_consistency():
    for design in ("pifo", "pieo"):
        limit = max_capacity(design, STRATIX_V)
        alms_fn = pifo_alms if design == "pifo" else pieo_alms
        assert alms_fn(limit) <= STRATIX_V.alms
        assert alms_fn(limit + 1) > STRATIX_V.alms


def test_bigger_device_scales_capacity():
    assert (max_capacity("pieo", STRATIX_10)
            > max_capacity("pieo", STRATIX_V))


def test_ablation_lane_minimum_near_sqrt():
    capacity = 4_096
    sqrt_size = int(math.sqrt(capacity))
    best = min(range(8, 513),
               key=lambda size: pieo_lanes(capacity, size))
    assert abs(best - sqrt_size) <= sqrt_size  # same order of magnitude
    assert (pieo_lanes(capacity, sqrt_size)
            <= pieo_lanes(capacity, 8))
    assert (pieo_lanes(capacity, sqrt_size)
            <= pieo_lanes(capacity, 512))
