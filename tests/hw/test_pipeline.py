"""Tests for the Section 6.2 pipelining analysis."""

import pytest

from repro.hw.pipeline import (earliest_issue, nonpipelined_total_cycles,
                               pipeline_report, pipelined_schedule,
                               pipelined_total_cycles)


def test_single_op_takes_four_cycles_either_way():
    assert nonpipelined_total_cycles(1) == 4
    assert pipelined_total_cycles(1) == 4


def test_zero_ops():
    assert pipelined_total_cycles(0) == 0
    assert pipelined_schedule(0) == []


def test_negative_ops_rejected():
    with pytest.raises(ValueError):
        pipelined_schedule(-1)


def test_no_two_memory_stages_collide():
    """The dual-port SRAM constraint: at most one op's memory stage per
    cycle (each memory stage already uses both ports)."""
    issues = pipelined_schedule(50)
    memory_cycles = []
    for issue in issues:
        memory_cycles.extend([issue + 1, issue + 3])
    assert len(memory_cycles) == len(set(memory_cycles))


def test_steady_state_issue_interval_is_two():
    report = pipeline_report(1_000)
    assert report.issue_interval == pytest.approx(2.0, abs=0.01)
    assert report.speedup == pytest.approx(2.0, abs=0.01)


def test_pipelined_never_slower_than_serial():
    for num_ops in (1, 2, 3, 5, 17, 100):
        assert (pipelined_total_cycles(num_ops)
                <= nonpipelined_total_cycles(num_ops))


def test_earliest_issue_respects_existing_ops():
    # Op at 0 uses memory in cycles 1 and 3; next op may issue at 1
    # (memory at 2 and 4 — no clash) but not such that memories collide.
    assert earliest_issue([]) == 0
    assert earliest_issue([0]) == 1
    assert earliest_issue([0, 1]) == 4


def test_schedule_is_monotone():
    issues = pipelined_schedule(100)
    assert issues == sorted(issues)
    assert len(set(issues)) == len(issues)


def test_full_pipeline_impossible():
    """1 op/cycle would require memory-stage overlap, which the port
    constraint forbids — throughput cannot beat 1 op per 2 cycles."""
    for num_ops in (10, 100, 500):
        assert pipelined_total_cycles(num_ops) >= 2 * num_ops
