"""Tests for the SRAM layout model."""

from repro.hw.device import STRATIX_V
from repro.hw.sram import (ENTRY_BITS, sram_overhead_factor, sram_report)


def test_entry_bits_match_paper_field_widths():
    """16-bit flow id + 16-bit rank + 16-bit send_time + 16-bit
    eligibility-sublist copy."""
    assert ENTRY_BITS == 64


def test_raw_bits_formula():
    report = sram_report(16, STRATIX_V)
    assert report.sublist_size == 4
    assert report.num_sublists == 8
    assert report.raw_bits == 8 * 4 * ENTRY_BITS


def test_30k_consumption_is_modest():
    """Section 6.1: total SRAM consumption is 'fairly modest'."""
    report = sram_report(30_000, STRATIX_V)
    assert report.fits
    assert report.percent < 20.0


def test_overhead_bounded_by_two():
    """Invariant 1: at most 2x slot over-provisioning."""
    for capacity in (16, 100, 1_024, 30_000, 65_536):
        factor = sram_overhead_factor(capacity)
        assert 1.0 <= factor <= 2.2  # 2x + ceil rounding slack


def test_perfect_square_overhead_exactly_two():
    assert sram_overhead_factor(1_024) == 2.0


def test_block_granularity_allocates_whole_blocks():
    report = sram_report(1_024, STRATIX_V)
    assert report.allocated_bits % STRATIX_V.sram_block_bits == 0
    assert report.allocated_bits >= report.raw_bits


def test_consumption_grows_with_size():
    small = sram_report(1_024, STRATIX_V)
    large = sram_report(30_000, STRATIX_V)
    assert large.percent > small.percent
    assert large.blocks_required > small.blocks_required
