"""Tests for the clock/scheduling-rate model: paper anchors."""

import pytest

from repro.hw.clock import (MTU_BUDGET_NS_AT_100G, asic_pieo_latency_ns,
                            pieo_clock_mhz, pieo_rate_report,
                            pifo_clock_mhz, pifo_rate_report)
from repro.hw.device import ASIC, STRATIX_V


def test_pieo_80mhz_at_30k():
    """Section 6.2: "even at 80 MHz ... every 50 ns"."""
    assert pieo_clock_mhz(30_000, STRATIX_V) == pytest.approx(80.0, abs=2)
    report = pieo_rate_report(30_000, STRATIX_V)
    assert report.op_latency_ns == pytest.approx(50.0, abs=2)


def test_pifo_57mhz_at_1k():
    """Section 6.2: "PIFO's design on top of our FPGA was clocked at
    57 MHz"."""
    assert pifo_clock_mhz(1_024, STRATIX_V) == pytest.approx(57.0, abs=2)


def test_mtu_at_100g_met_up_to_30k():
    for size in (1_024, 8_192, 30_000):
        assert pieo_rate_report(size, STRATIX_V).meets_mtu_at_100g


def test_clock_decreases_with_size():
    sizes = (1_024, 4_096, 16_384, 30_000)
    clocks = [pieo_clock_mhz(size, STRATIX_V) for size in sizes]
    assert clocks == sorted(clocks, reverse=True)


def test_asic_4ns_per_op():
    """Section 6.2: "At 1 GHz clock rate, each primitive operation in
    PIEO would only take 4 ns"."""
    assert asic_pieo_latency_ns() == pytest.approx(4.0)
    assert pieo_rate_report(30_000, ASIC).clock_mhz == 1_000.0


def test_pifo_one_cycle_pieo_four_cycles():
    assert pifo_rate_report(1_024, STRATIX_V).cycles_per_op == 1
    assert pieo_rate_report(1_024, STRATIX_V).cycles_per_op == 4


def test_ops_per_second_consistency():
    report = pieo_rate_report(30_000, STRATIX_V)
    assert report.ops_per_second == pytest.approx(
        1e9 / report.op_latency_ns)


def test_mtu_budget_constant():
    # 1500 B at 100 Gbps = 120 ns.
    assert MTU_BUDGET_NS_AT_100G == pytest.approx(1500 * 8 / 100, rel=0.01)
