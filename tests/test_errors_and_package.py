"""Package-level tests: error hierarchy, version, and the public API."""

import pytest

import repro
from repro.errors import (CapacityError, ConfigurationError,
                          DuplicateFlowError, InvariantViolation,
                          ReproError, SimulationError, UnknownFlowError)


def test_all_errors_derive_from_repro_error():
    for error_type in (CapacityError, ConfigurationError,
                       DuplicateFlowError, InvariantViolation,
                       SimulationError, UnknownFlowError):
        assert issubclass(error_type, ReproError)
        with pytest.raises(ReproError):
            raise error_type("boom")


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_api_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_doctest_in_package_docstring():
    """The quickstart snippet in the package docstring actually works."""
    import doctest
    failures, _ = doctest.testmod(repro, verbose=False)
    assert failures == 0


def test_subpackage_alls_are_accurate():
    import repro.analysis
    import repro.baselines
    import repro.core
    import repro.experiments
    import repro.hw
    import repro.sched
    import repro.sim
    for module in (repro.analysis, repro.baselines, repro.core,
                   repro.experiments, repro.hw, repro.sched, repro.sim):
        for name in module.__all__:
            assert hasattr(module, name), (module.__name__, name)
