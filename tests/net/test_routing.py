"""Static shortest-path routing and seeded-deterministic ECMP."""

import pytest

from repro.errors import ConfigurationError
from repro.net.routing import (FiveTuple, build_routes, ecmp_next_hop,
                               flow_path, ideal_fct_seconds)
from repro.net.topology import Topology, fat_tree, leaf_spine
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES


def _flow(src="h0", dst="h3", sport=7, dport=80):
    return FiveTuple(src=src, dst=dst, sport=sport, dport=dport)


class TestBuildRoutes:
    def test_leaf_spine_next_hops(self):
        topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
        routes = build_routes(topo)
        # Host -> same-leaf host: one hop through the leaf.
        assert routes.next_hops("h0", "h1") == ("l0",)
        assert routes.next_hops("l0", "h1") == ("h1",)
        # Cross-leaf: the leaf load-balances over both spines.
        assert routes.next_hops("l0", "h3") == ("sp0", "sp1")
        assert routes.next_hops("sp0", "h3") == ("l1",)

    def test_hosts_never_forward_transit(self):
        # h1 hangs off l0 but is never a next hop toward h3.
        topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
        routes = build_routes(topo)
        for node in ("l0", "l1", "sp0", "sp1"):
            for dst in ("h0", "h3"):
                if node == dst:
                    continue
                hops = routes.next_hops(node, dst)
                for hop in hops:
                    assert hop == dst or hop in topo.switches

    def test_unroutable_destination_raises(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        topo.add_host("h1")
        topo.add_switch("island")
        topo.add_link("h0", "s0", rate_bps=gbps(10))
        topo.add_link("h1", "island", rate_bps=gbps(10))
        routes = build_routes(topo)
        with pytest.raises(ConfigurationError):
            routes.next_hops("s0", "h1")


class TestEcmp:
    def test_deterministic_across_calls(self):
        candidates = ("sp0", "sp1", "sp2")
        flow = _flow()
        first = ecmp_next_hop(candidates, "l0", flow, seed=3)
        assert all(ecmp_next_hop(candidates, "l0", flow, seed=3)
                   == first for _ in range(10))

    def test_seed_and_tuple_change_choice(self):
        candidates = tuple(f"sp{i}" for i in range(8))
        flow = _flow()
        by_seed = {ecmp_next_hop(candidates, "l0", flow, seed=s)
                   for s in range(32)}
        by_port = {ecmp_next_hop(candidates, "l0",
                                 _flow(sport=s), seed=0)
                   for s in range(32)}
        assert len(by_seed) > 1
        assert len(by_port) > 1

    def test_no_polarization_across_switches(self):
        # The switch name is hashed in, so two consecutive ECMP stages
        # with the same candidate count do not all pick the same index.
        candidates = ("a", "b")
        picks = {node: ecmp_next_hop(candidates, node,
                                     _flow(sport=11), seed=0)
                 for node in ("l0", "l1", "sp0", "sp1", "agg0")}
        assert len(set(picks.values())) == 2

    def test_flow_path_walks_to_destination(self):
        topo = fat_tree(k=4)
        routes = build_routes(topo)
        flow = _flow(src="h0", dst="h15", sport=4, dport=5)
        path = flow_path(topo, routes, flow, seed=0)
        assert path[0] == "h0" and path[-1] == "h15"
        # Cross-pod in a k=4 fat tree: host-edge-agg-core-agg-edge-host.
        assert len(path) == 7

    def test_flow_path_same_leaf(self):
        topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
        routes = build_routes(topo)
        path = flow_path(topo, routes, _flow(src="h0", dst="h1"),
                         seed=0)
        assert path == ["h0", "l0", "h1"]


class TestIdealFct:
    def test_single_link_matches_serialization(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_switch("s")
        topo.add_link("a", "s", rate_bps=gbps(10), delay_s=0.0)
        topo.add_link("s", "b", rate_bps=gbps(10), delay_s=0.0)
        size = 4 * MTU_BYTES
        ideal = ideal_fct_seconds(topo, ["a", "s", "b"], size,
                                  MTU_BYTES)
        # Store-and-forward: head packet serializes twice, the rest
        # pipelines behind the 10 Gbps bottleneck.
        head = MTU_BYTES * 8 / gbps(10)
        rest = (size - MTU_BYTES) * 8 / gbps(10)
        assert ideal == pytest.approx(2 * head + rest)

    def test_propagation_delay_counts_once_per_link(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_switch("s")
        topo.add_link("a", "s", rate_bps=gbps(10), delay_s=5e-6)
        topo.add_link("s", "b", rate_bps=gbps(10), delay_s=5e-6)
        small = ideal_fct_seconds(topo, ["a", "s", "b"], 100,
                                  MTU_BYTES)
        assert small == pytest.approx(
            1e-5 + 2 * 100 * 8 / gbps(10))
