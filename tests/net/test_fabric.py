"""End-to-end fabric behavior: delivery, conservation, ECMP spread,
TTL, buffers, and error handling."""

import pytest

from repro.errors import ConfigurationError
from repro.net import Fabric, leaf_spine
from repro.net.topology import Topology
from repro.sim.generators import CbrGenerator
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES, reset_packet_ids


def _fabric(**kwargs):
    reset_packet_ids(0)
    topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2)
    return Fabric(topo, **kwargs)


class TestDelivery:
    def test_flow_completes_with_unit_slowdown_when_idle(self):
        fabric = _fabric(record_path=True)
        flow_id = fabric.open_flow("h0", "h3", 10 * MTU_BYTES)
        fabric.sim.run()
        record = fabric.collector.flows[flow_id]
        assert record.completed
        assert record.slowdown == pytest.approx(1.0, rel=1e-9)
        # Routed host -> leaf -> spine -> leaf -> host.
        assert record.path[0] == "h0" and record.path[-1] == "h3"
        assert len(record.path) == 5

    def test_packet_path_provenance_matches_precomputed(self):
        fabric = _fabric(record_path=True)
        fabric.open_flow("h0", "h2", 3 * MTU_BYTES)
        fabric.sim.run()
        record = next(iter(fabric.collector.flows.values()))
        assert record.path[1].startswith("l")
        assert record.path[2].startswith("sp")

    def test_same_leaf_skips_spine(self):
        fabric = _fabric(record_path=True)
        flow_id = fabric.open_flow("h0", "h1", MTU_BYTES)
        fabric.sim.run()
        assert fabric.collector.flows[flow_id].path == \
            ["h0", "l0", "h1"]

    def test_conservation_balances_across_all_nodes(self):
        fabric = _fabric()
        for src, dst in (("h0", "h3"), ("h1", "h2"), ("h2", "h0")):
            fabric.open_flow(src, dst, 20 * MTU_BYTES)
        fabric.sim.run()
        snapshot = fabric.conservation()
        assert snapshot["balanced"]
        assert snapshot["drops"] == 0
        assert snapshot["arrivals"] == snapshot["departures"]
        assert set(snapshot["nodes"]) == \
            set(fabric.hosts) | set(fabric.switches)

    def test_no_reordering(self):
        fabric = _fabric()
        for index in range(8):
            fabric.open_flow("h0", "h3", 30 * MTU_BYTES,
                             sport=index)
        fabric.sim.run()
        assert fabric.collector.reordered_total() == 0

    def test_ecmp_spreads_flows_across_spines(self):
        fabric = _fabric(record_path=True)
        for index in range(32):
            fabric.open_flow("h0", "h3", MTU_BYTES, sport=index)
        fabric.sim.run()
        spines = {record.path[2]
                  for record in fabric.collector.flows.values()}
        assert spines == {"sp0", "sp1"}

    def test_ecmp_choice_is_per_flow_constant(self):
        fabric = _fabric(record_path=True)
        flow_id = fabric.open_flow("h0", "h3", 50 * MTU_BYTES)
        fabric.sim.run()
        record = fabric.collector.flows[flow_id]
        # Every packet of the flow took the recorded path: delivered
        # in order with no residue anywhere.
        assert record.packets_delivered == 50
        assert record.reordered == 0


class TestTtl:
    def test_ttl_expiry_drops_and_counts(self):
        fabric = _fabric(ttl=2)  # expires at the second switch
        fabric.open_flow("h0", "h3", 5 * MTU_BYTES)
        fabric.sim.run()
        assert fabric.ttl_drops() == 5
        assert not next(iter(
            fabric.collector.flows.values())).completed
        # TTL drops do not unbalance conservation.
        assert fabric.conservation()["balanced"]

    def test_generous_ttl_reaches_destination(self):
        fabric = _fabric(ttl=4)  # three switch hops on this path
        flow_id = fabric.open_flow("h0", "h3", MTU_BYTES)
        fabric.sim.run()
        assert fabric.collector.flows[flow_id].completed


class TestBuffers:
    def test_shared_buffer_drops_under_incast(self):
        fabric = _fabric(buffer_bytes=4 * MTU_BYTES)
        for index, src in enumerate(("h0", "h1", "h2")):
            fabric.open_flow(src, "h3", 60 * MTU_BYTES, sport=index)
        fabric.sim.run()
        snapshot = fabric.conservation()
        assert snapshot["drops"] > 0
        assert snapshot["balanced"]

    def test_dropped_flows_never_finish(self):
        fabric = _fabric(buffer_bytes=4 * MTU_BYTES)
        ids = [fabric.open_flow(src, "h3", 60 * MTU_BYTES)
               for src in ("h0", "h1", "h2")]
        fabric.sim.run()
        incomplete = [flow_id for flow_id in ids
                      if not fabric.collector.flows[flow_id].completed]
        assert incomplete


class TestStream:
    def test_generator_driven_flow(self):
        fabric = _fabric()
        flow_id, sink = fabric.stream("h0", "h3")
        generator = CbrGenerator(fabric.sim, flow_id, sink,
                                 rate_bps=gbps(1),
                                 size_bytes=MTU_BYTES,
                                 end_time=0.001)
        generator.start(0.0)
        fabric.sim.run()
        assert fabric.hosts["h3"].received_pkts > 0
        assert fabric.conservation()["balanced"]


class TestErrors:
    def test_unknown_endpoint(self):
        fabric = _fabric()
        with pytest.raises(ConfigurationError):
            fabric.open_flow("h0", "ghost", MTU_BYTES)
        with pytest.raises(ConfigurationError):
            fabric.open_flow("l0", "h3", MTU_BYTES)

    def test_self_flow_rejected(self):
        fabric = _fabric()
        with pytest.raises(ConfigurationError):
            fabric.open_flow("h0", "h0", MTU_BYTES)

    def test_duplicate_flow_id_rejected(self):
        fabric = _fabric()
        fabric.open_flow("h0", "h3", MTU_BYTES, flow_id="dup")
        with pytest.raises(ConfigurationError):
            fabric.open_flow("h1", "h3", MTU_BYTES, flow_id="dup")

    def test_nonpositive_flow_size_rejected(self):
        fabric = _fabric()
        with pytest.raises(ConfigurationError):
            fabric.open_flow("h0", "h3", 0)

    def test_flow_ids_are_dot_free(self):
        fabric = _fabric()
        flow_id = fabric.open_flow("h0", "h3", MTU_BYTES)
        assert "." not in flow_id


class TestCustomTopologyValidation:
    def test_multi_homed_host_rejected(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_host("h1")
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("h0", "a", rate_bps=gbps(10))
        topo.add_link("h0", "b", rate_bps=gbps(10))
        topo.add_link("h1", "a", rate_bps=gbps(10))
        with pytest.raises(ConfigurationError):
            Fabric(topo)
