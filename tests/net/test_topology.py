"""Topology container and the dumbbell/leaf-spine/fat-tree builders."""

import pytest

from repro.errors import ConfigurationError
from repro.net.topology import (Topology, dumbbell, fat_tree,
                                leaf_spine)
from repro.sim.link import gbps


class TestTopology:
    def test_add_and_lookup(self):
        topo = Topology()
        topo.add_host("h0")
        topo.add_switch("s0")
        topo.add_link("h0", "s0", rate_bps=gbps(10), delay_s=2e-6)
        assert topo.link("h0", "s0").rate_bps == gbps(10)
        assert topo.link("s0", "h0").delay_s == 2e-6
        assert topo.neighbors("h0") == ["s0"]
        assert topo.nodes() == ["h0", "s0"]
        topo.validate()

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_host("x")
        with pytest.raises(ConfigurationError):
            topo.add_host("x")
        with pytest.raises(ConfigurationError):
            topo.add_switch("x")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_switch("a")
        topo.add_switch("b")
        topo.add_link("a", "b", rate_bps=gbps(10))
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "b", rate_bps=gbps(10))

    def test_link_between_unknown_nodes_rejected(self):
        topo = Topology()
        topo.add_switch("a")
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "ghost", rate_bps=gbps(10))

    def test_missing_link_raises(self):
        topo = Topology()
        topo.add_switch("a")
        topo.add_switch("b")
        with pytest.raises(ConfigurationError):
            topo.link("a", "b")

    def test_isolated_host_fails_validation(self):
        topo = Topology()
        topo.add_host("h0")
        with pytest.raises(ConfigurationError):
            topo.validate()

    def test_bad_link_parameters(self):
        topo = Topology()
        topo.add_host("h")
        topo.add_switch("s")
        with pytest.raises(ConfigurationError):
            topo.add_link("h", "s", rate_bps=0)
        with pytest.raises(ConfigurationError):
            topo.add_link("h", "s", rate_bps=gbps(1), delay_s=-1e-6)


class TestBuilders:
    def test_dumbbell_shape(self):
        topo = dumbbell(hosts_per_side=3)
        assert len(topo.hosts) == 6
        assert sorted(topo.switches) == ["s0", "s1"]
        assert topo.link("s0", "s1").rate_bps > \
            topo.link("h0", "s0").rate_bps
        topo.validate()

    def test_leaf_spine_shape(self):
        topo = leaf_spine(leaves=3, spines=2, hosts_per_leaf=2)
        assert len(topo.hosts) == 6
        leaves = [s for s in topo.switches if s.startswith("l")]
        spines = [s for s in topo.switches if s.startswith("sp")]
        assert len(leaves) == 3 and len(spines) == 2
        # Full mesh between tiers.
        for leaf in leaves:
            for spine in spines:
                assert topo.link(leaf, spine) is not None
        # Hosts are packed onto leaves in order.
        assert "l0" in topo.neighbors("h0")
        assert "l2" in topo.neighbors("h5")

    def test_fat_tree_k4(self):
        topo = fat_tree(k=4)
        # k^3/4 hosts, k^2/4 cores, k pods x k/2 agg + k/2 edge.
        assert len(topo.hosts) == 16
        assert len([s for s in topo.switches
                    if s.startswith("c")]) == 4
        assert len(topo.switches) == 4 + 4 * 4
        topo.validate()

    def test_fat_tree_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            fat_tree(k=3)
