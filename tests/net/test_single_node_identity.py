"""Single-node equivalence: a one-switch repro.net node is
bit-identical to a bare Dataplane built from the same pieces.

The fabric switch is supposed to be the single-switch stack *verbatim*
plus routing — so running the same arrival program through a
``FabricSwitch`` and through a hand-wired ``Dataplane`` +
``StaticClassifier`` must produce exactly the same recorder output
(times, flow ids, sizes, packet ids), not merely the same statistics.
"""

from repro.net.routing import FiveTuple, build_routes
from repro.net.switch import FabricSwitch
from repro.net.topology import Topology
from repro.sched.framework import PieoScheduler
from repro.sched.registry import make_algorithm
from repro.sim.classifier import StaticClassifier
from repro.sim.dataplane import Dataplane
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES, Packet, reset_packet_ids

RATE = gbps(10)
FLOWS = ("fa", "fb", "fc")
PACKETS_PER_FLOW = 20
GAP = MTU_BYTES * 8 / RATE / 2  # 2x oversubscribed: real queueing


def _topology():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    topo.add_switch("s0")
    topo.add_link("a", "s0", rate_bps=RATE, delay_s=0.0)
    topo.add_link("s0", "b", rate_bps=RATE, delay_s=0.0)
    return topo


def _arrival_program(sim, deliver):
    """Schedule the shared arrival pattern: three flows interleaved at
    2x the egress line rate."""
    for index in range(PACKETS_PER_FLOW):
        for offset, flow_id in enumerate(FLOWS):
            time = index * len(FLOWS) * GAP + offset * GAP
            packet = Packet(flow_id, size_bytes=MTU_BYTES,
                            arrival_time=time, dst="b", ttl=0)
            sim.schedule(time,
                         lambda f=flow_id, p=packet: deliver(f, p))


def _run_fabric_switch():
    reset_packet_ids(0)
    topo = _topology()
    routes = build_routes(topo)
    sim = Simulator()
    tuples = {flow_id: FiveTuple(src="a", dst="b", sport=index,
                                 dport=80)
              for index, flow_id in enumerate(FLOWS)}
    delivered = []
    switch = FabricSwitch(
        "s0", sim, topo, routes, tuples.__getitem__,
        forward=lambda hop, packet: delivered.append((hop, packet)),
        algorithm="drr")
    _arrival_program(sim, lambda _fid, packet: switch.ingest(packet))
    sim.run()
    return switch.dataplane, delivered


def _run_bare_dataplane():
    reset_packet_ids(0)
    topo = _topology()
    sim = Simulator()
    dataplane = Dataplane(
        sim, classifier=StaticClassifier(
            {flow_id: "b" for flow_id in FLOWS}))
    for neighbor in topo.neighbors("s0"):
        rate = topo.link("s0", neighbor).rate_bps

        def make_scheduler(tracer, metrics, rate=rate):
            return PieoScheduler(make_algorithm("drr"),
                                 link_rate_bps=rate, tracer=tracer,
                                 metrics=metrics)

        dataplane.add_port(neighbor, make_scheduler=make_scheduler,
                           link_rate_bps=rate)

    def deliver(flow_id, packet):
        port = dataplane.ports["b"]
        if port.flow_queue(flow_id) is None:
            port.scheduler.add_flow(FlowQueue(flow_id))
        dataplane.arrival_sink(flow_id, packet)

    _arrival_program(sim, deliver)
    sim.run()
    return dataplane


def test_fabric_switch_matches_bare_dataplane_bit_for_bit():
    fabric_plane, delivered = _run_fabric_switch()
    bare_plane = _run_bare_dataplane()
    fabric_out = fabric_plane.ports["b"].recorder.departures
    bare_out = bare_plane.ports["b"].recorder.departures
    assert len(fabric_out) == len(FLOWS) * PACKETS_PER_FLOW
    # Exact equality: same departure times, same flow interleaving,
    # same packet ids, same sizes.
    assert fabric_out == bare_out
    # The forward hook saw every transmitted packet, toward "b".
    assert len(delivered) == len(fabric_out)
    assert all(hop == "b" for hop, _ in delivered)


def test_conservation_snapshots_match():
    fabric_plane, _ = _run_fabric_switch()
    bare_plane = _run_bare_dataplane()
    assert fabric_plane.conservation() == bare_plane.conservation()
