"""FctCollector / FlowRecord bookkeeping in isolation."""

import pytest

from repro.net.fct import SHORT_FLOW_BYTES, FctCollector
from repro.sim.packet import Packet


def _start(collector, flow_id="f", size=3000, ideal=1e-3, now=0.0):
    return collector.flow_started(flow_id, "a", "b", size, now, ideal,
                                  path=["a", "s", "b"], packets=3)


class TestFlowRecord:
    def test_incomplete_flow_has_no_fct(self):
        collector = FctCollector()
        record = _start(collector)
        assert not record.completed
        assert record.fct_s is None
        assert record.slowdown is None

    def test_completion_and_slowdown(self):
        collector = FctCollector()
        record = _start(collector, size=2000, ideal=1e-3)
        collector.packet_delivered(
            Packet("f", size_bytes=1000), now=1e-3)
        assert not record.completed
        collector.packet_delivered(
            Packet("f", size_bytes=1000), now=2e-3)
        assert record.completed
        assert record.fct_s == pytest.approx(2e-3)
        assert record.slowdown == pytest.approx(2.0)

    def test_zero_ideal_gives_no_slowdown(self):
        collector = FctCollector()
        record = _start(collector, size=100, ideal=0.0)
        collector.packet_delivered(
            Packet("f", size_bytes=100), now=1e-3)
        assert record.completed
        assert record.slowdown is None

    def test_short_flow_threshold(self):
        collector = FctCollector()
        short = _start(collector, flow_id="s", size=SHORT_FLOW_BYTES)
        long = _start(collector, flow_id="l",
                      size=SHORT_FLOW_BYTES + 1)
        assert short.short and not long.short

    def test_reorder_counting(self):
        collector = FctCollector()
        record = _start(collector, size=5000)
        for packet_id in (3, 1, 2, 5):
            collector.packet_delivered(
                Packet("f", size_bytes=1000, packet_id=packet_id),
                now=1e-3)
        # 1 and 2 arrive after 3: two reorderings; 5 is in order.
        assert record.reordered == 2

    def test_duplicate_flow_rejected(self):
        collector = FctCollector()
        _start(collector)
        with pytest.raises(ValueError):
            _start(collector)

    def test_uncollected_flow_ignored(self):
        collector = FctCollector()
        collector.packet_delivered(
            Packet("ghost", size_bytes=100), now=0.0)
        assert collector.flows == {}


class TestStats:
    def test_slowdown_stats_split_by_size(self):
        collector = FctCollector()
        short = _start(collector, flow_id="s", size=1000, ideal=1e-3)
        long = _start(collector, flow_id="l",
                      size=SHORT_FLOW_BYTES + 1000, ideal=1e-2)
        collector.packet_delivered(
            Packet("s", size_bytes=1000), now=2e-3)
        collector.packet_delivered(
            Packet("l", size_bytes=SHORT_FLOW_BYTES + 1000), now=3e-2)
        stats = collector.slowdown_stats()
        assert stats["flows"] == 2 and stats["completed"] == 2
        assert stats["short_flows"] == 1 and stats["long_flows"] == 1
        assert stats["short_p50"] == pytest.approx(short.slowdown)
        assert stats["long_p50"] == pytest.approx(long.slowdown)
        assert stats["all_p99"] >= stats["all_p50"]

    def test_empty_groups_report_zero(self):
        collector = FctCollector()
        stats = collector.slowdown_stats()
        assert stats["flows"] == 0
        assert stats["all_p50"] == 0.0
        assert stats["short_p99"] == 0.0

    def test_residence_aggregation(self):
        collector = FctCollector()
        collector.note_residence("l0", 2e-6)
        collector.note_residence("l0", 4e-6)
        collector.note_residence("sp0", 1e-6)
        mean = collector.mean_residence_us()
        assert mean["l0"] == pytest.approx(3.0)
        assert mean["sp0"] == pytest.approx(1.0)
        assert collector.residence["l0"]["max_s"] == pytest.approx(4e-6)
