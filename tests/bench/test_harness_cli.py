"""Harness scenario registry + ``python -m repro.bench`` exit codes."""

from __future__ import annotations

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.harness import (QUICK_ROUNDS, available_scenarios,
                                 calibration_score, get_scenario,
                                 measure_scenario)
from repro.bench.results import bench_path, load_bench, write_bench
from repro.errors import ConfigurationError
from tests.bench.test_compare import record_with


class TestRegistry:
    def test_quick_subset(self):
        assert available_scenarios(quick=True) == ["hier", "incast",
                                                   "fabric"]
        full = available_scenarios(quick=False)
        assert set(full) >= {"hier", "incast", "fabric", "backend",
                             "analyze"}

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            get_scenario("warp-drive")

    def test_calibration_score_positive(self):
        assert calibration_score(10_000) > 0


class TestMeasureScenario:
    def test_hier_record_is_schema_valid(self):
        record = measure_scenario("hier", quick=True, rounds=1,
                                  run_date="2026-08-08")
        assert record["scenario"] == "hier"
        assert record["metrics"]["normalized"]["gated"] is True
        assert record["metrics"]["raw_rate"]["gated"] is False
        assert record["counts"]["packets"] > 0
        attribution = record["attribution"]
        assert attribution is not None
        assert 0.0 <= attribution["attributed_fraction"] <= 1.0
        assert record["provenance"]["run_date"] == "2026-08-08"

    def test_no_profile_skips_attribution(self):
        record = measure_scenario("hier", quick=True, rounds=1,
                                  profile=False,
                                  run_date="2026-08-08")
        assert record["attribution"] is None

    def test_default_rounds_follow_quick(self):
        record = measure_scenario("hier", quick=True, profile=False,
                                  run_date="2026-08-08")
        assert record["provenance"]["rounds"] == QUICK_ROUNDS
        assert len(record["metrics"]["normalized"]["samples"]) \
            == QUICK_ROUNDS

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError, match="rounds"):
            measure_scenario("hier", rounds=0)

    @pytest.mark.parametrize("name,count_key",
                             [("backend", "ops"), ("analyze", "events")])
    def test_full_scenarios_measure(self, name, count_key):
        record = measure_scenario(name, rounds=1, profile=False,
                                  run_date="2026-08-08")
        assert record["scenario"] == name
        assert record["metrics"]["normalized"]["gated"] is True
        assert record["counts"][count_key] > 0

    def test_fabric_scenario_measures_multi_switch_work(self):
        record = measure_scenario("fabric", rounds=1, profile=False,
                                  run_date="2026-08-08")
        assert record["scenario"] == "fabric"
        assert record["metrics"]["normalized"]["gated"] is True
        assert record["counts"]["hop_arrivals"] > 0
        assert record["counts"]["completed"] > 0


class TestCli:
    def test_run_writes_bench_files(self, tmp_path, capsys):
        code = main(["bench", "run", "--quick", "--rounds", "1",
                     "--scenario", "hier", "--no-profile",
                     "--out-dir", str(tmp_path),
                     "--run-date", "2026-08-08"])
        assert code == 0
        record = load_bench(bench_path(tmp_path, "hier"))
        assert record["provenance"]["quick"] is True
        assert "hier: normalized" in capsys.readouterr().out

    def test_compare_ok(self, tmp_path, capsys):
        for directory in ("base", "cur"):
            (tmp_path / directory).mkdir()
            write_bench(bench_path(tmp_path / directory, "hier"),
                        record_with(100.0))
        code = main(["bench", "compare",
                     "--baseline-dir", str(tmp_path / "base"),
                     "--current-dir", str(tmp_path / "cur"),
                     "--scenario", "hier"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_regression_exit_one(self, tmp_path, capsys):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        write_bench(bench_path(tmp_path / "base", "hier"),
                    record_with(100.0))
        write_bench(bench_path(tmp_path / "cur", "hier"),
                    record_with(10.0))
        code = main(["bench", "compare",
                     "--baseline-dir", str(tmp_path / "base"),
                     "--current-dir", str(tmp_path / "cur"),
                     "--scenario", "hier"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in captured.out
        assert "FAIL" in captured.err

    def test_compare_missing_baseline_exit_two(self, tmp_path, capsys):
        (tmp_path / "cur").mkdir()
        write_bench(bench_path(tmp_path / "cur", "hier"),
                    record_with(100.0))
        code = main(["bench", "compare",
                     "--baseline-dir", str(tmp_path / "nowhere"),
                     "--current-dir", str(tmp_path / "cur"),
                     "--scenario", "hier"])
        assert code == 2
        assert "no such BENCH" in capsys.readouterr().err

    def test_report_pretty_prints(self, tmp_path, capsys):
        write_bench(bench_path(tmp_path, "hier"), record_with(100.0))
        code = main(["bench", "report", "--dir", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "== hier" in output
        assert "[gated]" in output

    def test_report_prints_attribution_block(self, tmp_path, capsys):
        record = record_with(100.0)
        record["attribution"] = {
            "interval_s": 0.002, "samples": 50,
            "components": {"sim.events": 0.06, "core.pieo": 0.04},
            "attributed_fraction": 1.0, "overhead_s": 0.001,
        }
        write_bench(bench_path(tmp_path, "hier"), record)
        code = main(["bench", "report", "--dir", str(tmp_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "attribution (50 samples" in output
        assert "sim.events" in output

    def test_report_empty_dir_errors(self, tmp_path, capsys):
        code = main(["bench", "report", "--dir", str(tmp_path)])
        assert code == 2
        assert "no BENCH_*.json" in capsys.readouterr().err

    def test_report_malformed_file_errors(self, tmp_path, capsys):
        bench_path(tmp_path, "hier").write_text("{broken")
        code = main(["bench", "report", "--dir", str(tmp_path)])
        assert code == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_list_names_scenarios(self, capsys):
        assert main(["bench", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("hier", "incast", "backend", "analyze"):
            assert name in output

    def test_unknown_scenario_exit_two(self, tmp_path, capsys):
        code = main(["bench", "run", "--scenario", "warp-drive",
                     "--out-dir", str(tmp_path)])
        assert code == 2
        assert "unknown bench" in capsys.readouterr().err

    def test_bad_rounds_exit_two(self, tmp_path, capsys):
        code = main(["bench", "run", "--rounds", "0",
                     "--out-dir", str(tmp_path)])
        assert code == 2
        assert "--rounds" in capsys.readouterr().err

    def test_bench_json_is_sorted_and_stable(self, tmp_path):
        write_bench(bench_path(tmp_path, "hier"), record_with(100.0))
        text = bench_path(tmp_path, "hier").read_text()
        record = json.loads(text)
        assert list(record) == sorted(record)
