"""BENCH_*.json schema: build, validate, round-trip, fail loudly."""

from __future__ import annotations

import json

import pytest

from repro.bench.results import (BenchFormatError, SCHEMA_VERSION,
                                 bench_filename, bench_path,
                                 gated_metrics, git_commit, load_bench,
                                 make_metric, make_provenance,
                                 make_result, provenance_header,
                                 read_table_text, strip_provenance,
                                 validate_result, write_bench,
                                 write_table_text)


def build_record(scenario: str = "hier"):
    return make_result(
        scenario,
        metrics={
            "normalized": make_metric("pps per Mops", [10.0, 12.0, 11.0],
                                      gated=True),
            "raw_rate": make_metric("pps", [30000.0]),
        },
        counts={"packets": 4242},
        attribution={"interval_s": 0.002, "samples": 100,
                     "components": {"sim.events": 0.5, "other": 0.5},
                     "attributed_fraction": 0.5, "overhead_s": 0.001},
        provenance=make_provenance("2026-08-08", commit="abc1234",
                                   rounds=3))


class TestMakeMetric:
    def test_median_and_iqr(self):
        metric = make_metric("pps", [1.0, 2.0, 3.0, 4.0], gated=True)
        assert metric["median"] == pytest.approx(2.5)
        assert metric["iqr"] == pytest.approx(1.5)
        assert metric["gated"] is True
        assert metric["samples"] == [1.0, 2.0, 3.0, 4.0]

    def test_single_sample_iqr_zero(self):
        metric = make_metric("pps", [5.0])
        assert metric["median"] == 5.0
        assert metric["iqr"] == 0.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            make_metric("pps", [])


class TestSchemaRoundTrip:
    def test_write_then_load(self, tmp_path):
        record = build_record()
        path = write_bench(bench_path(tmp_path, "hier"), record)
        assert path.name == bench_filename("hier") == "BENCH_hier.json"
        assert load_bench(path) == record

    def test_schema_version_stamped(self):
        assert build_record()["schema_version"] == SCHEMA_VERSION

    def test_gated_metrics_filter(self):
        assert list(gated_metrics(build_record())) == ["normalized"]

    def test_null_attribution_allowed(self, tmp_path):
        record = make_result(
            "hier", {"normalized": make_metric("pps", [1.0],
                                               gated=True)},
            counts={}, attribution=None,
            provenance=make_provenance("2026-08-08", commit="abc"))
        path = write_bench(bench_path(tmp_path, "hier"), record)
        assert load_bench(path)["attribution"] is None


class TestValidation:
    @pytest.mark.parametrize("mutate, message", [
        (lambda r: r.pop("metrics"), "missing key 'metrics'"),
        (lambda r: r.update(schema_version=99), "schema_version"),
        (lambda r: r.update(scenario=""), "scenario"),
        (lambda r: r.update(metrics={}), "non-empty"),
        (lambda r: r["metrics"].update(bad="nope"), "not an object"),
        (lambda r: r["metrics"]["normalized"].pop("unit"),
         "missing key 'unit'"),
        (lambda r: r["metrics"]["normalized"].update(samples=[]),
         "non-empty list"),
        (lambda r: r["metrics"]["normalized"].update(median="fast"),
         "must be a number"),
        (lambda r: r.update(counts=[1]), "counts"),
        (lambda r: r.update(attribution="yes"),
         "attribution must be an object"),
        (lambda r: r.update(attribution={"samples": 3}),
         "components"),
        (lambda r: r.update(provenance=None), "provenance"),
    ])
    def test_malformed_records_fail_loudly(self, mutate, message):
        record = build_record()
        mutate(record)
        with pytest.raises(BenchFormatError, match=message):
            validate_result(record)

    def test_non_dict_rejected(self):
        with pytest.raises(BenchFormatError, match="not a JSON object"):
            validate_result(["list"])

    def test_error_names_the_source(self):
        with pytest.raises(BenchFormatError, match="trajectory.json"):
            validate_result({}, source="trajectory.json")


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchFormatError, match="no such BENCH"):
            load_bench(tmp_path / "BENCH_hier.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "BENCH_hier.json"
        path.write_text("{not json")
        with pytest.raises(BenchFormatError, match="invalid JSON"):
            load_bench(path)

    def test_valid_json_bad_schema(self, tmp_path):
        path = tmp_path / "BENCH_hier.json"
        path.write_text(json.dumps({"schema_version": 1}))
        with pytest.raises(BenchFormatError, match="missing key"):
            load_bench(path)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(BenchFormatError):
            write_bench(tmp_path / "BENCH_x.json", {"nope": 1})


class TestProvenance:
    def test_git_commit_shape(self):
        commit = git_commit()
        # In this repo it's a short hash; outside any repo, "unknown".
        assert commit == "unknown" or len(commit) >= 7

    def test_git_commit_outside_repo(self, tmp_path):
        assert git_commit(cwd=tmp_path) == "unknown"

    def test_provenance_extra_fields(self):
        record = make_provenance("2026-08-08", commit="abc",
                                 rounds=2, quick=True, tolerance=0.3)
        assert record["quick"] is True
        assert record["tolerance"] == 0.3

    def test_header_lines_are_comments(self):
        header = provenance_header("2026-08-08", commit="abc1234",
                                   calibration_mops=1.234)
        for line in header.splitlines():
            assert line.startswith("#")
        assert "abc1234" in header
        assert "1.234" in header
        assert f"schema v{SCHEMA_VERSION}" in header


class TestTableWriter:
    def test_round_trip_strips_header(self, tmp_path):
        body = "col_a  col_b\n1      2\n"
        path = write_table_text(tmp_path / "out" / "table.txt", body,
                                run_date="2026-08-08", commit="abc",
                                calibration_mops=1.0)
        raw = path.read_text()
        assert raw.startswith("# repro bench artifact")
        assert "# git-commit: abc" in raw
        assert read_table_text(path) == body

    def test_strip_provenance_drops_leading_blanks(self):
        text = "# header\n\nbody line\n"
        assert strip_provenance(text) == "body line\n"

    def test_strip_provenance_empty(self):
        assert strip_provenance("# only header\n") == ""
