"""Compare gate: exit-code contract (0 pass / 1 regression / 2 error)."""

from __future__ import annotations

import pytest

from repro.bench.compare import (EXIT_ERROR, EXIT_OK, EXIT_REGRESSION,
                                 MetricComparison, compare_dirs,
                                 compare_records)
from repro.bench.results import (BenchFormatError, bench_path,
                                 make_metric, make_provenance,
                                 make_result, write_bench)


def record_with(normalized: float, scenario: str = "hier",
                extra_gated=None):
    metrics = {
        "normalized": make_metric("pps per Mops", [normalized],
                                  gated=True),
        "raw_rate": make_metric("pps", [normalized * 1000.0]),
    }
    for name, value in (extra_gated or {}).items():
        metrics[name] = make_metric("pps per Mops", [value], gated=True)
    return make_result(scenario, metrics, counts={}, attribution=None,
                       provenance=make_provenance("2026-08-08",
                                                  commit="abc"))


def write_pair(tmp_path, baseline: float, current: float,
               scenario: str = "hier"):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    base_dir.mkdir(exist_ok=True)
    cur_dir.mkdir(exist_ok=True)
    write_bench(bench_path(base_dir, scenario),
                record_with(baseline, scenario))
    write_bench(bench_path(cur_dir, scenario),
                record_with(current, scenario))
    return base_dir, cur_dir


class TestCompareRecords:
    def test_only_gated_metrics_compared(self):
        rows = compare_records(record_with(100.0), record_with(100.0))
        assert [row.metric for row in rows] == ["normalized"]

    def test_within_tolerance_passes(self):
        rows = compare_records(record_with(100.0), record_with(75.0),
                               tolerance=0.30)
        assert not rows[0].regressed
        assert "ok" in rows[0].describe()

    def test_beyond_tolerance_regresses(self):
        rows = compare_records(record_with(100.0), record_with(65.0),
                               tolerance=0.30)
        assert rows[0].regressed
        assert "REGRESSED" in rows[0].describe()

    def test_improvement_never_regresses(self):
        rows = compare_records(record_with(100.0), record_with(500.0))
        assert not rows[0].regressed

    def test_gated_metric_missing_from_current_regresses(self):
        baseline = record_with(100.0, extra_gated={"incast": 50.0})
        rows = compare_records(baseline, record_with(100.0))
        missing = {row.metric: row for row in rows}["incast"]
        assert missing.regressed
        assert "MISSING" in missing.describe()

    def test_scenario_mismatch_raises(self):
        with pytest.raises(BenchFormatError, match="mismatch"):
            compare_records(record_with(1.0, scenario="hier"),
                            record_with(1.0, scenario="incast"))

    def test_ratio(self):
        row = MetricComparison("hier", "normalized", baseline=100.0,
                               current=80.0, tolerance=0.3)
        assert row.ratio == pytest.approx(0.8)
        assert MetricComparison("hier", "n", 0.0, 1.0, 0.3).ratio is None


class TestCompareDirs:
    def test_pass_exit_zero(self, tmp_path):
        base_dir, cur_dir = write_pair(tmp_path, 100.0, 95.0)
        comparisons, errors, code = compare_dirs(base_dir, cur_dir,
                                                 ["hier"])
        assert code == EXIT_OK
        assert not errors
        assert len(comparisons) == 1

    def test_regression_exit_one(self, tmp_path):
        base_dir, cur_dir = write_pair(tmp_path, 100.0, 10.0)
        _, errors, code = compare_dirs(base_dir, cur_dir, ["hier"])
        assert code == EXIT_REGRESSION
        assert not errors

    def test_missing_baseline_exit_two(self, tmp_path):
        _, cur_dir = write_pair(tmp_path, 100.0, 100.0)
        _, errors, code = compare_dirs(tmp_path / "nowhere", cur_dir,
                                       ["hier"])
        assert code == EXIT_ERROR
        assert "no such BENCH" in errors[0]

    def test_malformed_current_exit_two(self, tmp_path):
        base_dir, cur_dir = write_pair(tmp_path, 100.0, 100.0)
        bench_path(cur_dir, "hier").write_text("{broken")
        _, errors, code = compare_dirs(base_dir, cur_dir, ["hier"])
        assert code == EXIT_ERROR
        assert "invalid JSON" in errors[0]

    def test_error_beats_regression(self, tmp_path):
        base_dir, cur_dir = write_pair(tmp_path, 100.0, 10.0)
        write_bench(bench_path(base_dir, "incast"),
                    record_with(50.0, "incast"))
        _, errors, code = compare_dirs(base_dir, cur_dir,
                                       ["hier", "incast"])
        assert code == EXIT_ERROR  # incast missing from current
        assert errors

    def test_custom_tolerance(self, tmp_path):
        base_dir, cur_dir = write_pair(tmp_path, 100.0, 89.0)
        _, _, strict = compare_dirs(base_dir, cur_dir, ["hier"],
                                    tolerance=0.10)
        _, _, loose = compare_dirs(base_dir, cur_dir, ["hier"],
                                   tolerance=0.20)
        assert strict == EXIT_REGRESSION
        assert loose == EXIT_OK
