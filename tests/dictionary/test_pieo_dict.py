"""Tests for the PIEO dictionary ADT (Section 8)."""

import pytest

from repro.core.pieo import PieoHardwareList
from repro.dictionary import PieoDict
from repro.errors import CapacityError


def test_insert_search_delete():
    table = PieoDict()
    table.insert(5, "five")
    table.insert(3, "three")
    assert table.search(5) == "five"
    assert table.search(99, default="missing") == "missing"
    assert table.delete(3) == "three"
    assert table.delete(3) is None  # NULL semantics
    assert len(table) == 1


def test_mapping_protocol():
    table = PieoDict()
    table[1] = "one"
    table[2] = "two"
    assert table[1] == "one"
    assert 2 in table
    assert 3 not in table
    del table[2]
    with pytest.raises(KeyError):
        table[2]
    with pytest.raises(KeyError):
        del table[2]


def test_insert_replaces_existing_key():
    table = PieoDict()
    table.insert(7, "old")
    table.insert(7, "new")
    assert len(table) == 1
    assert table[7] == "new"


def test_keys_iterate_in_sorted_order():
    table = PieoDict()
    for key in (9, 1, 5, 3, 7):
        table.insert(key, str(key))
    assert table.keys() == [1, 3, 5, 7, 9]
    assert [key for key in table] == [1, 3, 5, 7, 9]
    assert table.items()[0] == (1, "1")
    assert table.values() == ["1", "3", "5", "7", "9"]


def test_update_in_place():
    table = PieoDict()
    table.insert(4, "before")
    assert table.update(4, "after") is True
    assert table[4] == "after"
    assert table.update(99, "x") is False


def test_min_and_pop_min():
    table = PieoDict()
    assert table.min_key() is None
    assert table.pop_min() is None
    for key in (6, 2, 8):
        table.insert(key, key * 10)
    assert table.min_key() == 2
    assert table.pop_min() == (2, 20)
    assert table.min_key() == 6


def test_range_queries():
    table = PieoDict()
    for key in range(10):
        table.insert(key, f"v{key}")
    assert table.range_keys(3, 6) == [3, 4, 5, 6]
    assert table.range_keys(20, 30) == []


def test_pop_range_extracts_in_order():
    table = PieoDict()
    for key in range(10):
        table.insert(key, f"v{key}")
    popped = table.pop_range(2, 7, limit=3)
    assert popped == [(2, "v2"), (3, "v3"), (4, "v4")]
    assert table.range_keys(2, 7) == [5, 6, 7]


def test_pop_range_unlimited():
    table = PieoDict()
    for key in (1, 5, 9):
        table.insert(key, None)
    assert [key for key, _ in table.pop_range(0, 6)] == [1, 5]
    assert table.keys() == [9]


def test_dictionary_on_hardware_backend():
    """The whole dictionary runs on the cycle-accurate hardware design."""
    backend = PieoHardwareList(32, self_check=True)
    table = PieoDict(backend=backend)
    for key in (4, 8, 1, 6):
        table.insert(key, key)
    assert table.keys() == [1, 4, 6, 8]
    assert table.pop_min() == (1, 1)
    assert table.update(6, "updated")
    assert table[6] == "updated"
    # Each primitive op cost 4 cycles on the hardware model.
    assert backend.counters.ops["enqueue"] >= 5


def test_hardware_backend_capacity_error():
    table = PieoDict(backend=PieoHardwareList(2))
    table.insert(1)
    table.insert(2)
    with pytest.raises(CapacityError):
        table.insert(3)


def test_float_keys():
    table = PieoDict()
    table.insert(1.5, "a")
    table.insert(0.25, "b")
    assert table.keys() == [0.25, 1.5]
