"""Property-based differential test: PieoDict must behave like a sorted
view of a built-in dict under any operation sequence — on both the
reference backend and the cycle-accurate hardware backend."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pieo import PieoHardwareList
from repro.dictionary import PieoDict

key = st.integers(min_value=0, max_value=30)
operation = st.one_of(
    st.tuples(st.just("insert"), key, st.integers()),
    st.tuples(st.just("delete"), key, st.none()),
    st.tuples(st.just("update"), key, st.integers()),
    st.tuples(st.just("pop_min"), st.none(), st.none()),
    st.tuples(st.just("pop_range"), key, key),
)


def apply(ops, table):
    model = {}
    for name, a, b in ops:
        if name == "insert":
            table.insert(a, b)
            model[a] = b
        elif name == "delete":
            expected = model.pop(a, None)
            assert table.delete(a) == expected
        elif name == "update":
            expected = a in model
            assert table.update(a, b) is expected
            if expected:
                model[a] = b
        elif name == "pop_min":
            popped = table.pop_min()
            if model:
                smallest = min(model)
                assert popped == (smallest, model.pop(smallest))
            else:
                assert popped is None
        else:  # pop_range
            low, high = min(a, b), max(a, b)
            expected = sorted(k for k in model if low <= k <= high)
            popped = table.pop_range(low, high)
            assert [k for k, _ in popped] == expected
            for k in expected:
                del model[k]
        assert table.keys() == sorted(model)
        assert len(table) == len(model)
    for k, v in model.items():
        assert table[k] == v


@settings(max_examples=120, deadline=None)
@given(st.lists(operation, max_size=60))
def test_dict_matches_builtin_reference_backend(ops):
    apply(ops, PieoDict())


@settings(max_examples=60, deadline=None)
@given(st.lists(operation, max_size=50))
def test_dict_matches_builtin_hardware_backend(ops):
    apply(ops, PieoDict(backend=PieoHardwareList(64, self_check=True)))
