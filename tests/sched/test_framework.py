"""Tests for the programming-framework plumbing (Section 3.2)."""

import pytest

from repro.core.pieo import PieoHardwareList
from repro.errors import ConfigurationError, UnknownFlowError
from repro.sched.base import SchedulingAlgorithm, TriggerModel
from repro.sched.framework import PieoScheduler
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


def test_default_algorithm_is_fifo_across_flows():
    """Default functions: rank 1, always eligible -> flows served in
    activation order, round-robin by re-enqueue."""
    scheduler = PieoScheduler(SchedulingAlgorithm())
    for name in ("a", "b"):
        scheduler.add_flow(FlowQueue(name))
    scheduler.on_arrival("a", Packet("a"), now=0.0)
    scheduler.on_arrival("a", Packet("a"), now=0.0)
    scheduler.on_arrival("b", Packet("b"), now=0.0)
    order = [scheduler.schedule(now=0.0)[0].flow_id for _ in range(3)]
    assert order == ["a", "b", "a"]
    assert scheduler.schedule(now=0.0) == []


def test_arrival_to_backlogged_flow_does_not_reenqueue():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    assert scheduler.on_arrival("a", Packet("a"), 0.0) is True
    assert scheduler.on_arrival("a", Packet("a"), 0.0) is False
    assert len(scheduler.ordered_list) == 1


def test_unknown_flow_rejected():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    with pytest.raises(UnknownFlowError):
        scheduler.on_arrival("ghost", Packet("ghost"), 0.0)


def test_duplicate_flow_registration_rejected():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    with pytest.raises(ConfigurationError):
        scheduler.add_flow(FlowQueue("a"))


def test_invalid_link_rate_rejected():
    with pytest.raises(ConfigurationError):
        PieoScheduler(SchedulingAlgorithm(), link_rate_bps=0)


def test_input_triggered_model_uses_per_packet_attributes():
    """Input-triggered: rank/predicate computed at packet arrival and
    inherited from the queue head at re-enqueue (Section 3.2.1)."""

    class PerPacketPriority(SchedulingAlgorithm):
        def packet_attributes(self, ctx, flow, packet):
            return packet.size_bytes, 0  # rank = size

    scheduler = PieoScheduler(PerPacketPriority(),
                              trigger=TriggerModel.INPUT)
    scheduler.add_flow(FlowQueue("big"))
    scheduler.add_flow(FlowQueue("small"))
    scheduler.on_arrival("big", Packet("big", size_bytes=1500), 0.0)
    scheduler.on_arrival("small", Packet("small", size_bytes=100), 0.0)
    assert scheduler.schedule(0.0)[0].flow_id == "small"
    assert scheduler.schedule(0.0)[0].flow_id == "big"


def test_input_triggered_reenqueue_inherits_head_attributes():
    class PerPacketPriority(SchedulingAlgorithm):
        def packet_attributes(self, ctx, flow, packet):
            return packet.size_bytes, 0

    scheduler = PieoScheduler(PerPacketPriority(),
                              trigger=TriggerModel.INPUT)
    scheduler.add_flow(FlowQueue("f"))
    scheduler.add_flow(FlowQueue("g"))
    scheduler.on_arrival("f", Packet("f", size_bytes=1000), 0.0)
    scheduler.on_arrival("f", Packet("f", size_bytes=10), 0.0)
    scheduler.on_arrival("g", Packet("g", size_bytes=500), 0.0)
    # First decision serves f (rank 1000 vs 500? no: g=500 smaller).
    assert scheduler.schedule(0.0)[0].flow_id == "g"
    # f re-ranked by its 1000 B head; then by the 10 B head.
    assert scheduler.schedule(0.0)[0].size_bytes == 1000
    assert scheduler.schedule(0.0)[0].size_bytes == 10


def test_schedule_on_hardware_list():
    scheduler = PieoScheduler(SchedulingAlgorithm(),
                              ordered_list=PieoHardwareList(
                                  16, self_check=True))
    scheduler.add_flow(FlowQueue("a"))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    assert scheduler.schedule(0.0)[0].flow_id == "a"


def test_pause_and_resume_flow():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    scheduler.pause_flow("a", 0.0)
    assert scheduler.schedule(0.0) == []
    # Arrivals while paused do not re-enqueue the flow element.
    scheduler.on_arrival("a", Packet("a"), 0.0)
    assert scheduler.schedule(0.0) == []
    assert scheduler.resume_flow("a", 1.0) is True
    assert scheduler.schedule(1.0)[0].flow_id == "a"


def test_resume_empty_flow_is_noop():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.pause_flow("a", 0.0)
    assert scheduler.resume_flow("a", 0.0) is False


def test_paused_flow_not_reenqueued_after_service():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    scheduler.on_arrival("a", Packet("a"), 0.0)
    # Pause takes effect for the re-enqueue path too.
    scheduler.blocked["a"] = True
    assert len(scheduler.schedule(0.0)) == 1
    assert scheduler.schedule(0.0) == []


def test_run_alarm_requires_resident_flow():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    assert scheduler.run_alarm("a", 0.0) is False


def test_run_alarm_custom_handler():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.add_flow(FlowQueue("b"))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    scheduler.on_arrival("b", Packet("b"), 0.0)
    # Asynchronously move "a" behind "b" by re-enqueueing with rank 9.
    handled = []

    def handler(ctx, flow):
        handled.append(flow.flow_id)
        ctx.enqueue(flow, rank=9)

    assert scheduler.run_alarm("a", 0.0, handler) is True
    assert handled == ["a"]
    assert scheduler.schedule(0.0)[0].flow_id == "b"
    assert scheduler.schedule(0.0)[0].flow_id == "a"


def test_decisions_counter():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    scheduler.schedule(0.0)
    scheduler.schedule(0.0)  # miss
    assert scheduler.decisions == 1
