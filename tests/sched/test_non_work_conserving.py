"""End-to-end tests for the non-work-conserving algorithms
(Section 4.2): Token Bucket and RCSP."""

import pytest

from repro.core.pieo import PieoHardwareList
from repro.sched import (PieoScheduler, RateControlledStaticPriority,
                         RateJitterRegulator, TokenBucket)
from repro.sim import (FlowQueue, Link, Packet, Simulator, TransmitEngine,
                       gbps)
from repro.sim.packet import MTU_BYTES

from tests.scenarios import FlatRun

MEASURE_START = 0.005
DURATION = 0.05


def shaped_run(limits_gbps, ordered_list=None, link_gbps=10.0):
    run = FlatRun(TokenBucket(), link_gbps=link_gbps,
                  ordered_list=ordered_list)
    for name, limit in limits_gbps.items():
        run.add_backlogged_flow(FlowQueue(name, rate_bps=gbps(limit)))
    run.run(DURATION)
    return run.rates(start=MEASURE_START, end=DURATION, in_gbps=True)


# ---------------------------------------------------------------------
# Token Bucket
# ---------------------------------------------------------------------
def test_token_bucket_enforces_single_rate():
    rates = shaped_run({"f": 1.0})
    assert rates["f"] == pytest.approx(1.0, rel=0.02)


def test_token_bucket_enforces_many_rates():
    limits = {"a": 0.5, "b": 1.0, "c": 2.0, "d": 4.0}
    rates = shaped_run(limits)
    for name, limit in limits.items():
        assert rates[name] == pytest.approx(limit, rel=0.02), name


def test_token_bucket_leaves_link_idle():
    """Non-work-conserving: the link idles even with backlog."""
    run = FlatRun(TokenBucket(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("f", rate_bps=gbps(1)))
    run.run(DURATION)
    assert run.link.utilization(DURATION) < 0.15


def test_token_bucket_on_hardware_list():
    rates = shaped_run({"a": 1.0, "b": 2.0},
                       ordered_list=PieoHardwareList(32, self_check=True))
    assert rates["a"] == pytest.approx(1.0, rel=0.02)
    assert rates["b"] == pytest.approx(2.0, rel=0.02)


def test_token_bucket_paces_interdeparture_gaps():
    """Packet pacing: steady-state gaps equal packet_time = L/rate."""
    run = FlatRun(TokenBucket(default_burst_bytes=MTU_BYTES),
                  link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("f", rate_bps=gbps(1)))
    run.run(DURATION)
    gaps = run.engine.recorder.interdeparture_times("f")
    steady = gaps[5:]
    expected = MTU_BYTES * 8 / gbps(1)
    assert all(gap == pytest.approx(expected, rel=0.01) for gap in steady)


def test_token_bucket_burst_allowance():
    """A long-idle flow may burst up to its bucket depth at line rate."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(
        TokenBucket(default_burst_bytes=3 * MTU_BYTES),
        link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("f", rate_bps=gbps(0.1)))
    engine = TransmitEngine(sim, scheduler, link)
    for _ in range(4):
        engine.arrival_sink("f", Packet("f"))
    sim.run_until(1.0)
    departures = engine.recorder.departures
    assert len(departures) == 4
    line_gap = MTU_BYTES * 8 / gbps(10)
    # First three ride the burst at line rate; the fourth waits ~120 us.
    assert (departures[1].time - departures[0].time
            == pytest.approx(line_gap, rel=0.01))
    assert (departures[2].time - departures[1].time
            == pytest.approx(line_gap, rel=0.01))
    assert (departures[3].time - departures[2].time
            > 50 * line_gap)


def test_token_bucket_requires_rate():
    scheduler = PieoScheduler(TokenBucket())
    scheduler.add_flow(FlowQueue("f"))  # no rate_bps
    with pytest.raises(ValueError):
        scheduler.on_arrival("f", Packet("f"), 0.0)


def test_token_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(default_burst_bytes=0)


def test_aggregate_cannot_exceed_link():
    """Shapers summing over the link rate degrade to link sharing, never
    overcommit."""
    rates = shaped_run({"a": 8.0, "b": 8.0}, link_gbps=10.0)
    assert rates["a"] + rates["b"] <= 10.0 * 1.001


# ---------------------------------------------------------------------
# RCSP
# ---------------------------------------------------------------------
def test_rcsp_priority_order_among_eligible():
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(RateControlledStaticPriority(),
                              link_rate_bps=link.rate_bps)
    high = scheduler.add_flow(FlowQueue("high", priority=0))
    low = scheduler.add_flow(FlowQueue("low", priority=5))
    engine = TransmitEngine(sim, scheduler, link)
    # Both eligible immediately: high priority must go first even though
    # low arrived first.
    engine.arrival_sink("low", Packet("low"))
    engine.arrival_sink("high", Packet("high"))
    sim.run_until(1.0)
    assert engine.recorder.order() == ["high", "low"]
    assert high.is_empty and low.is_empty


def test_rcsp_defers_ineligible_high_priority():
    """The rate controller can hold back a high-priority packet; lower
    priority eligible traffic goes first (shaped, not starved)."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(RateControlledStaticPriority(),
                              link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("high", priority=0))
    scheduler.add_flow(FlowQueue("low", priority=5))
    engine = TransmitEngine(sim, scheduler, link)
    held = Packet("high")
    held.eligible_time = 1e-3
    engine.arrival_sink("high", held)
    engine.arrival_sink("low", Packet("low"))
    sim.run_until(1.0)
    departures = engine.recorder.departures
    assert [d.flow_id for d in departures] == ["low", "high"]
    assert departures[1].time == pytest.approx(1e-3, abs=1e-5)


def test_rate_jitter_regulator_spacing():
    regulator = RateJitterRegulator()
    flow = FlowQueue("f", rate_bps=12e6)  # MTU per ms
    first = Packet("f", arrival_time=0.0)
    burst = Packet("f", arrival_time=0.0)
    later = Packet("f", arrival_time=0.01)
    for packet in (first, burst, later):
        regulator.regulate(flow, packet)
    assert first.eligible_time == 0.0
    assert burst.eligible_time == pytest.approx(1e-3)
    assert later.eligible_time == pytest.approx(0.01)


def test_rate_jitter_regulator_unshaped_flow():
    regulator = RateJitterRegulator()
    flow = FlowQueue("f")  # rate 0 -> no shaping
    packet = Packet("f", arrival_time=3.0)
    regulator.regulate(flow, packet)
    assert packet.eligible_time == 3.0


def test_rcsp_end_to_end_shaping():
    """Regulator + RCSP: per-flow packet rate enforced at the scheduler."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(RateControlledStaticPriority(),
                              link_rate_bps=link.rate_bps)
    flow = scheduler.add_flow(FlowQueue("f", rate_bps=gbps(1),
                                        priority=1))
    engine = TransmitEngine(sim, scheduler, link)
    regulator = RateJitterRegulator()

    def regulated_sink(flow_id, packet):
        regulator.regulate(flow, packet)
        engine.arrival_sink(flow_id, packet)

    for _ in range(20):
        regulated_sink("f", Packet("f", arrival_time=0.0))
    sim.run_until(1.0)
    gaps = engine.recorder.interdeparture_times("f")
    expected = MTU_BYTES * 8 / gbps(1)
    assert all(gap == pytest.approx(expected, rel=0.01)
               for gap in gaps[1:])
