"""Tests for the MLFQ / PIAS-style scheduler (Section 2.3, ref. [4])."""

import pytest

from repro.errors import ConfigurationError
from repro.sched import MultiLevelFeedbackQueue, PieoScheduler
from repro.sim import FlowQueue, Packet, gbps

from tests.scenarios import FlatRun

KB = 1000


def test_threshold_validation():
    with pytest.raises(ConfigurationError):
        MultiLevelFeedbackQueue([])
    with pytest.raises(ConfigurationError):
        MultiLevelFeedbackQueue([5, 3])
    with pytest.raises(ConfigurationError):
        MultiLevelFeedbackQueue([0, 5])
    with pytest.raises(ConfigurationError):
        MultiLevelFeedbackQueue([5, 5])


def test_level_progression():
    algorithm = MultiLevelFeedbackQueue([10 * KB, 100 * KB])
    assert algorithm.num_levels == 3
    flow = FlowQueue("f")
    assert algorithm.level_of(flow) == 0
    flow.state["mlfq_bytes_sent"] = 10 * KB
    assert algorithm.level_of(flow) == 1
    flow.state["mlfq_bytes_sent"] = 500 * KB
    assert algorithm.level_of(flow) == 2
    algorithm.reset_flow(flow)
    assert algorithm.level_of(flow) == 0


def test_bytes_counted_on_transmit():
    scheduler = PieoScheduler(MultiLevelFeedbackQueue([3 * KB]))
    flow = scheduler.add_flow(FlowQueue("f"))
    for _ in range(4):
        scheduler.on_arrival("f", Packet("f", size_bytes=1500), 0.0)
    scheduler.schedule(0.0)
    scheduler.schedule(0.0)
    assert flow.state["mlfq_bytes_sent"] == 3000
    # Crossed the 3 KB threshold: resident rank is now level 1.
    assert scheduler.ordered_list.snapshot()[0].rank == 1


def test_new_short_flow_preempts_demoted_long_flow():
    """The PIAS effect: a long flow sinks to a lower level, so a newly
    arriving short flow jumps ahead of it."""
    scheduler = PieoScheduler(MultiLevelFeedbackQueue([2 * KB]))
    scheduler.add_flow(FlowQueue("elephant"))
    scheduler.add_flow(FlowQueue("mouse"))
    for _ in range(6):
        scheduler.on_arrival("elephant",
                             Packet("elephant", size_bytes=1500), 0.0)
    # Serve the elephant past its threshold.
    scheduler.schedule(0.0)
    scheduler.schedule(0.0)
    # A short flow arrives: level 0 vs the elephant's level 1.
    scheduler.on_arrival("mouse", Packet("mouse", size_bytes=500), 0.0)
    assert scheduler.schedule(0.0)[0].flow_id == "mouse"
    assert scheduler.schedule(0.0)[0].flow_id == "elephant"


def test_mlfq_short_flows_finish_faster_end_to_end():
    """Mean completion order: short flows (inserted late) still beat the
    long-running elephants — approximate SJF without size knowledge."""
    run = FlatRun(MultiLevelFeedbackQueue([5 * KB, 50 * KB]),
                  link_gbps=1.0)
    run.add_backlogged_flow(FlowQueue("elephant0"), depth=4)
    run.add_backlogged_flow(FlowQueue("elephant1"), depth=4)
    run.run(0.005)
    # Inject a 3-packet mouse mid-run.
    run.scheduler.add_flow(FlowQueue("mouse"))
    for _ in range(3):
        run.engine.arrival_sink("mouse", Packet("mouse",
                                                size_bytes=1000))
    run.run(0.01)
    mouse_departures = [d for d in run.engine.recorder.departures
                        if d.flow_id == "mouse"]
    assert len(mouse_departures) == 3
    # All three mouse packets leave within a few packet times of entry.
    assert mouse_departures[-1].time - 0.005 < 8 * 1500 * 8 / 1e9


def test_work_conserving_shares_bottom_level():
    """Two equally demoted elephants share the link round-robin."""
    run = FlatRun(MultiLevelFeedbackQueue([1 * KB]), link_gbps=1.0)
    run.add_backlogged_flow(FlowQueue("a"), depth=4)
    run.add_backlogged_flow(FlowQueue("b"), depth=4)
    run.run(0.01)
    rates = run.rates(start=0.002, end=0.01)
    assert rates["a"] == pytest.approx(rates["b"], rel=0.05)
    assert run.link.utilization(0.01) > 0.95
