"""Tests for the priority schedulers (Section 4.5)."""

from repro.sched import (EarliestDeadlineFirst, LeastSlackTimeFirst,
                         PieoScheduler, ShortestJobFirst,
                         ShortestRemainingTimeFirst, StrictPriority)
from repro.sim import FlowQueue, Link, Packet, Simulator, TransmitEngine, gbps


def drain_order(scheduler, arrivals, now=0.0):
    """Feed (flow_id, packet) arrivals, then drain; return flow order."""
    for flow_id, packet in arrivals:
        scheduler.on_arrival(flow_id, packet, now)
    order = []
    while True:
        packets = scheduler.schedule(now)
        if not packets:
            return order
        order.extend(packet.flow_id for packet in packets)


def test_strict_priority_order():
    scheduler = PieoScheduler(StrictPriority())
    for name, priority in (("bulk", 7), ("control", 0), ("video", 3)):
        scheduler.add_flow(FlowQueue(name, priority=priority))
    order = drain_order(scheduler, [
        ("bulk", Packet("bulk")),
        ("video", Packet("video")),
        ("control", Packet("control")),
    ])
    assert order == ["control", "video", "bulk"]


def test_strict_priority_fifo_within_level():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("a", priority=1))
    scheduler.add_flow(FlowQueue("b", priority=1))
    order = drain_order(scheduler, [
        ("b", Packet("b")), ("a", Packet("a")),
        ("b", Packet("b")), ("a", Packet("a")),
    ])
    assert order == ["b", "a", "b", "a"]


def test_strict_priority_starves_low_priority():
    """Without aging, a saturating high-priority flow starves the rest —
    the motivation for Section 4.4."""
    sim = Simulator()
    link = Link(gbps(1))
    scheduler = PieoScheduler(StrictPriority(), link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("high", priority=0))
    scheduler.add_flow(FlowQueue("low", priority=9))
    engine = TransmitEngine(sim, scheduler, link)

    def refill_high():
        engine.arrival_sink("high", Packet("high"))

    engine.add_departure_listener("high", refill_high)
    engine.arrival_sink("low", Packet("low"))
    refill_high()
    refill_high()
    sim.run_until(0.01)
    assert "low" not in engine.recorder.order()


def test_sjf_serves_smallest_backlog_first():
    scheduler = PieoScheduler(ShortestJobFirst())
    scheduler.add_flow(FlowQueue("small"))
    scheduler.add_flow(FlowQueue("large"))
    order = drain_order(scheduler, [
        ("large", Packet("large", size_bytes=1500)),
        ("small", Packet("small", size_bytes=64)),
    ])
    assert order == ["small", "large"]


def test_srtf_rank_tracks_remaining_bytes():
    scheduler = PieoScheduler(ShortestRemainingTimeFirst())
    flow_a = scheduler.add_flow(FlowQueue("a"))
    scheduler.add_flow(FlowQueue("b"))
    scheduler.on_arrival("a", Packet("a", size_bytes=1000), 0.0)
    scheduler.on_arrival("a", Packet("a", size_bytes=1000), 0.0)
    scheduler.on_arrival("b", Packet("b", size_bytes=1500), 0.0)
    # The second arrival grew a's backlog to 2000 B after its rank was
    # set; refresh it asynchronously (Section 4.4 dynamic rank update).
    scheduler.run_alarm("a", 0.0)
    # Now a has 2000 B remaining, b 1500 B -> b first; then a.
    assert scheduler.schedule(0.0)[0].flow_id == "b"
    assert scheduler.schedule(0.0)[0].flow_id == "a"
    assert flow_a.state["remaining_bytes"] == 1000


def test_srtf_without_refresh_keeps_activation_rank():
    scheduler = PieoScheduler(ShortestRemainingTimeFirst())
    scheduler.add_flow(FlowQueue("a"))
    scheduler.add_flow(FlowQueue("b"))
    scheduler.on_arrival("a", Packet("a", size_bytes=1000), 0.0)
    scheduler.on_arrival("a", Packet("a", size_bytes=1000), 0.0)
    scheduler.on_arrival("b", Packet("b", size_bytes=1500), 0.0)
    # Without the refresh, a keeps its activation-time rank of 1000.
    assert scheduler.schedule(0.0)[0].flow_id == "a"


def test_edf_orders_by_absolute_deadline():
    scheduler = PieoScheduler(EarliestDeadlineFirst())
    tight = scheduler.add_flow(FlowQueue("tight"))
    loose = scheduler.add_flow(FlowQueue("loose"))
    tight.state["deadline_offset"] = 0.001
    loose.state["deadline_offset"] = 1.0
    order = drain_order(scheduler, [
        ("loose", Packet("loose", arrival_time=0.0)),
        ("tight", Packet("tight", arrival_time=0.0)),
    ])
    assert order == ["tight", "loose"]


def test_edf_earlier_arrival_wins_same_offset():
    scheduler = PieoScheduler(EarliestDeadlineFirst())
    scheduler.add_flow(FlowQueue("early"))
    scheduler.add_flow(FlowQueue("late"))
    scheduler.on_arrival("early", Packet("early", arrival_time=0.0), 0.0)
    scheduler.on_arrival("late", Packet("late", arrival_time=0.5), 0.5)
    assert scheduler.schedule(0.5)[0].flow_id == "early"


def test_lstf_least_slack_first():
    scheduler = PieoScheduler(LeastSlackTimeFirst(), link_rate_bps=gbps(1))
    urgent = scheduler.add_flow(FlowQueue("urgent"))
    relaxed = scheduler.add_flow(FlowQueue("relaxed"))
    urgent.state["deadline_offset"] = 0.01
    relaxed.state["deadline_offset"] = 0.5
    order = drain_order(scheduler, [
        ("relaxed", Packet("relaxed", arrival_time=0.0)),
        ("urgent", Packet("urgent", arrival_time=0.0)),
    ])
    assert order == ["urgent", "relaxed"]


def test_lstf_accounts_for_remaining_transmission():
    """Equal deadlines: the flow with more bytes left has less slack."""
    scheduler = PieoScheduler(LeastSlackTimeFirst(), link_rate_bps=gbps(1))
    scheduler.add_flow(FlowQueue("heavy"))
    scheduler.add_flow(FlowQueue("light"))
    scheduler.on_arrival("heavy", Packet("heavy", size_bytes=1500), 0.0)
    scheduler.on_arrival("light", Packet("light", size_bytes=100), 0.0)
    assert scheduler.schedule(0.0)[0].flow_id == "heavy"
