"""Tests for asynchronous scheduling (Section 4.4): priority aging and
network-feedback pause/resume."""

import pytest

from repro.sched import (AgingStrictPriority, FeedbackChannel,
                         PieoScheduler, install_aging_monitor,
                         starving_flows)
from repro.sim import FlowQueue, Link, Packet, Simulator, TransmitEngine, gbps


def saturated_priority_setup(algorithm):
    sim = Simulator()
    link = Link(gbps(1))
    scheduler = PieoScheduler(algorithm, link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("high", priority=0))
    scheduler.add_flow(FlowQueue("low", priority=9))
    engine = TransmitEngine(sim, scheduler, link)
    engine.add_departure_listener(
        "high", lambda: engine.arrival_sink("high", Packet("high")))
    engine.arrival_sink("high", Packet("high"))
    engine.arrival_sink("high", Packet("high"))
    engine.arrival_sink("low", Packet("low"))
    return sim, scheduler, engine


def test_aging_rescues_starving_flow():
    """With the aging alarm installed, the low-priority flow eventually
    transmits despite a saturating high-priority flow."""
    sim, scheduler, engine = saturated_priority_setup(AgingStrictPriority())
    install_aging_monitor(sim, scheduler, threshold=1e-3, period=5e-4,
                          end_time=0.1)
    sim.run_until(0.1)
    assert "low" in engine.recorder.order()
    # The alarm handler decremented the flow's priority at least 9 times.
    assert scheduler.flows["low"].priority < 1


def test_no_aging_monitor_means_starvation():
    sim, scheduler, engine = saturated_priority_setup(AgingStrictPriority())
    sim.run_until(0.05)
    assert "low" not in engine.recorder.order()


def test_starving_flows_detector():
    scheduler = PieoScheduler(AgingStrictPriority())
    backlogged = scheduler.add_flow(FlowQueue("b", priority=1))
    scheduler.add_flow(FlowQueue("idle", priority=1))
    scheduler.on_arrival("b", Packet("b"), 0.0)
    assert starving_flows(scheduler, now=0.5, threshold=1.0) == []
    assert starving_flows(scheduler, now=2.0,
                          threshold=1.0) == [backlogged]


def test_aging_resets_age_on_service():
    sim, scheduler, engine = saturated_priority_setup(AgingStrictPriority())
    sim.run_until(0.01)
    assert scheduler.flows["high"].state["age"] > 0.0


def test_install_aging_monitor_validation():
    sim = Simulator()
    scheduler = PieoScheduler(AgingStrictPriority())
    with pytest.raises(ValueError):
        install_aging_monitor(sim, scheduler, threshold=0, period=1,
                              end_time=1)


def test_feedback_pause_silences_flow():
    sim = Simulator()
    link = Link(gbps(1))
    scheduler = PieoScheduler(AgingStrictPriority(),
                              link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("f", priority=1))
    engine = TransmitEngine(sim, scheduler, link)
    engine.add_departure_listener(
        "f", lambda: engine.arrival_sink("f", Packet("f")))
    channel = FeedbackChannel(sim, scheduler, engine=engine)
    engine.arrival_sink("f", Packet("f"))
    engine.arrival_sink("f", Packet("f"))
    sim.schedule(0.001, lambda: channel.pause("f"))
    sim.run_until(0.01)
    paused_count = len(engine.recorder)
    sim.run_until(0.02)
    assert len(engine.recorder) == paused_count  # nothing after pause


def test_feedback_resume_restarts_flow():
    sim = Simulator()
    link = Link(gbps(1))
    scheduler = PieoScheduler(AgingStrictPriority(),
                              link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("f", priority=1))
    engine = TransmitEngine(sim, scheduler, link)
    engine.add_departure_listener(
        "f", lambda: engine.arrival_sink("f", Packet("f")))
    channel = FeedbackChannel(sim, scheduler, engine=engine)
    engine.arrival_sink("f", Packet("f"))
    engine.arrival_sink("f", Packet("f"))
    sim.schedule(0.001, lambda: channel.pause("f"))
    sim.schedule(0.010, lambda: channel.resume("f"))
    sim.run_until(0.02)
    after_resume = [d for d in engine.recorder.departures
                    if d.time > 0.010]
    assert after_resume  # flow transmits again after resume
    assert channel.log[0].kind == "pause"
    assert channel.log[1].kind == "resume"


def test_feedback_delay_applied():
    sim = Simulator()
    scheduler = PieoScheduler(AgingStrictPriority())
    scheduler.add_flow(FlowQueue("f", priority=1))
    channel = FeedbackChannel(sim, scheduler, delay=0.5)
    scheduler.on_arrival("f", Packet("f"), 0.0)
    channel.pause("f")
    sim.run_until(0.4)
    assert scheduler.schedule(sim.now) != []  # not yet applied
    scheduler.on_arrival("f", Packet("f"), sim.now)
    sim.run_until(0.6)
    assert channel.log[0].time == pytest.approx(0.5)
    assert scheduler.schedule(sim.now) == []  # now paused


def test_feedback_validation():
    sim = Simulator()
    scheduler = PieoScheduler(AgingStrictPriority())
    with pytest.raises(ValueError):
        FeedbackChannel(sim, scheduler, delay=-1)
