"""Shared simulation harness for scheduling-algorithm tests."""

from __future__ import annotations

from typing import Dict, Optional

from repro.sched.framework import PieoScheduler
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.generators import BackloggedSource
from repro.sim.link import Link, gbps
from repro.sim.packet import MTU_BYTES


class FlatRun:
    """A flat scheduler + engine + backlogged sources, ready to run."""

    def __init__(self, algorithm, link_gbps: float = 10.0,
                 ordered_list=None, trigger=None) -> None:
        self.sim = Simulator()
        self.link = Link(gbps(link_gbps))
        kwargs = {"link_rate_bps": self.link.rate_bps}
        if ordered_list is not None:
            kwargs["ordered_list"] = ordered_list
        if trigger is not None:
            kwargs["trigger"] = trigger
        self.scheduler = PieoScheduler(algorithm, **kwargs)
        self.engine = TransmitEngine(self.sim, self.scheduler, self.link)
        self.sources: Dict[str, BackloggedSource] = {}

    def add_backlogged_flow(self, flow: FlowQueue, depth: int = 2,
                            size_bytes: int = MTU_BYTES,
                            start: float = 0.0,
                            end_time: float = float("inf")) -> FlowQueue:
        self.scheduler.add_flow(flow)
        source = BackloggedSource(self.sim, flow.flow_id,
                                  self.engine.arrival_sink, depth=depth,
                                  size_bytes=size_bytes, end_time=end_time)
        self.engine.add_departure_listener(flow.flow_id,
                                           source.on_departure)
        source.start(start)
        self.sources[flow.flow_id] = source
        return flow

    def run(self, duration: float) -> "FlatRun":
        self.sim.run_until(duration)
        return self

    def rates(self, start: float, end: Optional[float] = None,
              in_gbps: bool = False) -> Dict:
        measured = self.engine.recorder.rate_bps(start=start, end=end)
        if in_gbps:
            return {key: value / 1e9 for key, value in measured.items()}
        return measured
