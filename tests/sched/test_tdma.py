"""Tests for time-slotted (TDMA) scheduling — the precise-transmission
use case from the paper's introduction."""

import pytest

from repro.errors import ConfigurationError
from repro.sched import PieoScheduler, TimeSlotted
from repro.sim import (BackloggedSource, FlowQueue, Link, Packet, Simulator,
                       TransmitEngine, gbps)

SLOT = 10e-6
FRAME_SLOTS = 4


def make_scheduler():
    scheduler = PieoScheduler(TimeSlotted(SLOT, FRAME_SLOTS),
                              link_rate_bps=gbps(10))
    for slot in range(3):
        flow = scheduler.add_flow(FlowQueue(f"s{slot}"))
        flow.state["slot"] = slot
    return scheduler


def test_next_slot_time_math():
    algorithm = TimeSlotted(SLOT, FRAME_SLOTS)
    flow = FlowQueue("f")
    flow.state["slot"] = 2
    assert algorithm.next_slot_time(flow, 0.0) == pytest.approx(2 * SLOT)
    assert algorithm.next_slot_time(flow, 2 * SLOT) == pytest.approx(
        2 * SLOT)  # boundary is inclusive
    assert algorithm.next_slot_time(flow, 2.1 * SLOT) == pytest.approx(
        2 * SLOT + FRAME_SLOTS * SLOT)


def test_one_opportunity_per_frame():
    algorithm = TimeSlotted(SLOT, FRAME_SLOTS)
    flow = FlowQueue("f")
    flow.state["slot"] = 1
    first = algorithm.next_slot_time(flow, 0.0)
    flow.state["last_slot_time"] = first
    second = algorithm.next_slot_time(flow, first)
    assert second == pytest.approx(first + FRAME_SLOTS * SLOT)


def test_validation():
    with pytest.raises(ConfigurationError):
        TimeSlotted(0, 4)
    with pytest.raises(ConfigurationError):
        TimeSlotted(1e-6, 0)
    algorithm = TimeSlotted(SLOT, 2)
    flow = FlowQueue("f")
    flow.state["slot"] = 7
    with pytest.raises(ConfigurationError):
        algorithm.slot_of(flow)


def test_departures_hit_slot_boundaries_exactly():
    """The precision claim: every packet leaves exactly at its flow's
    slot boundary (the link is idle when the slot opens)."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TimeSlotted(SLOT, FRAME_SLOTS),
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    for slot in range(3):
        flow = scheduler.add_flow(FlowQueue(f"s{slot}"))
        flow.state["slot"] = slot
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2, size_bytes=1500)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(1e-3)
    assert len(engine.recorder) >= 3 * (1e-3 / (FRAME_SLOTS * SLOT)) - 3
    for departure in engine.recorder.departures:
        slot_index = int(departure.flow_id[1:])
        offset = (departure.time - slot_index * SLOT) % (
            FRAME_SLOTS * SLOT)
        jitter = min(offset, FRAME_SLOTS * SLOT - offset)
        assert jitter < 1e-12, (departure, jitter)


def test_slots_do_not_collide():
    """At most one transmission starts per slot; owners match slots."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TimeSlotted(SLOT, FRAME_SLOTS),
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    for slot in range(FRAME_SLOTS):
        flow = scheduler.add_flow(FlowQueue(f"s{slot}"))
        flow.state["slot"] = slot
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2, size_bytes=1500)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(1e-3)
    seen_slots = set()
    for departure in engine.recorder.departures:
        global_slot = round(departure.time / SLOT)
        assert global_slot not in seen_slots
        seen_slots.add(global_slot)
        assert global_slot % FRAME_SLOTS == int(departure.flow_id[1:])


def test_idle_slots_leave_link_idle():
    """Non-work-conserving: an unowned slot stays silent even with
    backlog elsewhere."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TimeSlotted(SLOT, FRAME_SLOTS),
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    flow = scheduler.add_flow(FlowQueue("s0"))
    flow.state["slot"] = 0
    source = BackloggedSource(sim, "s0", engine.arrival_sink, depth=4,
                              size_bytes=1500)
    engine.add_departure_listener("s0", source.on_departure)
    source.start(0.0)
    sim.run_until(1e-3)
    # One 1.2 us packet per 40 us frame = 3% utilization.
    assert link.utilization(1e-3) < 0.05


def test_late_arrival_waits_for_next_owned_slot():
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TimeSlotted(SLOT, FRAME_SLOTS),
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    flow = scheduler.add_flow(FlowQueue("s1"))
    flow.state["slot"] = 1
    # Arrive just after slot 1 opened: must wait one full frame.
    sim.schedule(SLOT * 1.5,
                 lambda: engine.arrival_sink("s1", Packet("s1")))
    sim.run_until(1e-3)
    departure = engine.recorder.departures[0]
    assert departure.time == pytest.approx(SLOT + FRAME_SLOTS * SLOT)
