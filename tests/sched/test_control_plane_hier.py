"""Control-plane writes against a running hierarchical scheduler.

The paper's control plane (Fig. 1, Sections 2.1/3.2) configures
per-flow state while the data path runs.  In the hierarchy every node
owns a per-level :class:`PieoScheduler`, so a :class:`ControlPlane`
wraps the node whose logical PIEO holds the element being configured:
the root's scheduler for node-level writes (rate limits), a leaf
parent's scheduler for flow-level writes (weights).  Writes to
resident elements go through the Section 4.4 alarm path — dequeue,
mutate, re-run Pre-Enqueue — so they take effect before the flow's
next natural dequeue.
"""

import pytest

from repro.sched import (ControlPlane, DeficitRoundRobin,
                         HierarchicalScheduler, StrictPriority,
                         TokenBucket, WF2Qplus, two_level_tree)
from repro.sched.hierarchical import SchedNode
from repro.sim import FlowQueue, Packet, gbps
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.generators import BackloggedSource
from repro.sim.link import Link


def _hier_run(node_rates_gbps, flows_per_node=2):
    sim = Simulator()
    link = Link(gbps(10))
    root, leaves = two_level_tree(
        TokenBucket(), [WF2Qplus() for _ in node_rates_gbps],
        flows_per_node=flows_per_node,
        node_rate_bps=[gbps(rate) for rate in node_rates_gbps])
    hier = HierarchicalScheduler(root, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, hier, link)
    for flow in leaves:
        source = BackloggedSource(sim, flow.flow_id,
                                  engine.arrival_sink, depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    return sim, engine, hier


def test_leaf_weight_write_shifts_fair_shares_mid_run():
    """set_weight on a leaf's parent scheduler re-splits the node's
    WF2Q+ shares from the write onward."""
    sim, engine, hier = _hier_run([4.0])
    node = hier.leaf_parent["n0.f0"]
    control = ControlPlane(node.scheduler)
    sim.schedule(0.01, lambda: control.set_weight("n0.f0", 3.0,
                                                  now=sim.now))
    sim.run_until(0.03)
    before = engine.recorder.rate_bps(start=0.002, end=0.0095)
    # The alarm re-enqueue stamps start = max(finish, virtual_time);
    # WF2Q+'s virtual time runs ahead of the per-flow finish times, so
    # the re-written flow sits out a short catch-up transient before
    # the new 3:1 split locks in — measure after it.
    after = engine.recorder.rate_bps(start=0.018, end=0.0295)
    assert before["n0.f0"] == pytest.approx(before["n0.f1"], rel=0.05)
    assert after["n0.f0"] == pytest.approx(3 * after["n0.f1"],
                                           rel=0.1)
    assert control.audit_log[0][1:] == ("n0.f0", "weight", 3.0)


def test_node_rate_limit_write_at_root_level_mid_run():
    """set_rate_limit on the root scheduler re-shapes a level-2 node's
    Token Bucket from the write onward (SchedNode quacks like a
    FlowQueue for its parent's algorithm, so the same ControlPlane
    works one level up)."""
    sim, engine, hier = _hier_run([1.0, 1.0])
    control = ControlPlane(hier.root.scheduler)
    sim.schedule(0.01, lambda: (
        control.set_rate_limit("n0", gbps(4), now=sim.now),
        engine.kick()))
    sim.run_until(0.02)

    def node_rate(start, end):
        rates = engine.recorder.rate_bps(
            start=start, end=end, key=lambda fid: fid.split(".")[0])
        return rates
    before = node_rate(0.002, 0.0095)
    after = node_rate(0.0105, 0.0195)
    assert before["n0"] == pytest.approx(gbps(1), rel=0.05)
    assert after["n0"] == pytest.approx(gbps(4), rel=0.05)
    # The sibling keeps its own limit throughout.
    assert after["n1"] == pytest.approx(gbps(1), rel=0.05)


def test_alarm_path_reenqueue_takes_effect_before_next_dequeue():
    """A priority write to a *resident* element re-ranks it through the
    alarm path immediately — the next dequeue sees the new rank, not
    the one stamped at enqueue time."""
    root = SchedNode("root", DeficitRoundRobin())
    node = SchedNode("n0", StrictPriority())
    root.add_child(node)
    fast = FlowQueue("n0.fast", priority=1)
    slow = FlowQueue("n0.slow", priority=5)
    node.add_child(fast)
    node.add_child(slow)
    hier = HierarchicalScheduler(root, link_rate_bps=gbps(10))
    hier.on_arrival("n0.fast", Packet("n0.fast"), 0.0)
    hier.on_arrival("n0.slow", Packet("n0.slow"), 0.0)
    # Both resident; "fast" would win.  Flip priorities via the control
    # plane *without* any dequeue happening in between.
    control = ControlPlane(node.scheduler)
    control.set_priority("n0.slow", 0, now=0.0)
    ranks = {element.flow_id: element.rank
             for element in node.scheduler.ordered_list.snapshot()}
    assert ranks["n0.slow"] == 0  # re-ranked in place
    packets = hier.schedule(0.0)
    assert [packet.flow_id for packet in packets] == ["n0.slow"]


def test_write_to_idle_hier_flow_applies_at_next_activation():
    root = SchedNode("root", DeficitRoundRobin())
    node = SchedNode("n0", StrictPriority())
    root.add_child(node)
    flow = FlowQueue("n0.f0", priority=7)
    node.add_child(flow)
    hier = HierarchicalScheduler(root, link_rate_bps=gbps(10))
    control = ControlPlane(node.scheduler)
    control.set_priority("n0.f0", 2, now=0.0)  # idle: applied directly
    hier.on_arrival("n0.f0", Packet("n0.f0"), 1.0)
    element = node.scheduler.ordered_list.snapshot()[0]
    assert element.rank == 2
