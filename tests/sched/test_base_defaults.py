"""Direct tests of the SchedulingAlgorithm defaults (Section 3.2.1)."""

from repro.core.element import ALWAYS_ELIGIBLE
from repro.sched import PieoScheduler, SchedulingAlgorithm
from repro.sched.base import TimeBase, TriggerModel
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


def test_default_pre_enqueue_assigns_rank_one_always_eligible():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    flow = scheduler.add_flow(FlowQueue("f"))
    flow.push(Packet("f"))
    ctx = SchedulerContext(scheduler, 0.0, reason="arrival")
    scheduler.algorithm.pre_enqueue(ctx, flow)
    element = scheduler.ordered_list.snapshot()[0]
    assert element.rank == 1
    assert element.send_time == ALWAYS_ELIGIBLE


def test_default_post_dequeue_sends_head_and_reenqueues():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    flow = scheduler.add_flow(FlowQueue("f"))
    flow.push(Packet("f"))
    flow.push(Packet("f"))
    ctx = SchedulerContext(scheduler, 0.0, reason="dequeue")
    scheduler.algorithm.post_dequeue(ctx, flow)
    assert len(ctx.sent) == 1
    assert len(flow) == 1
    assert "f" in scheduler.ordered_list


def test_default_post_dequeue_drops_empty_flow():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    flow = scheduler.add_flow(FlowQueue("f"))
    flow.push(Packet("f"))
    ctx = SchedulerContext(scheduler, 0.0, reason="dequeue")
    scheduler.algorithm.post_dequeue(ctx, flow)
    assert "f" not in scheduler.ordered_list


def test_default_packet_attributes():
    algorithm = SchedulingAlgorithm()
    assert algorithm.packet_attributes(None, None, None) == (
        1, ALWAYS_ELIGIBLE)


def test_default_alarm_handler_is_noop():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    flow = scheduler.add_flow(FlowQueue("f"))
    ctx = SchedulerContext(scheduler, 0.0, reason="alarm")
    assert scheduler.algorithm.alarm_handler(ctx, flow) is None


def test_eligibility_time_bases():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    scheduler.state["virtual_time"] = 42.0
    ctx = SchedulerContext(scheduler, 7.0, reason="dequeue")
    wall = SchedulingAlgorithm()
    assert wall.eligibility_time(ctx) == 7.0
    virtual = SchedulingAlgorithm()
    virtual.time_base = TimeBase.VIRTUAL
    assert virtual.eligibility_time(ctx) == 42.0


def test_trigger_model_enum_values():
    assert TriggerModel.INPUT.value == "input"
    assert TriggerModel.OUTPUT.value == "output"


def test_context_virtual_time_setter():
    scheduler = PieoScheduler(SchedulingAlgorithm())
    ctx = SchedulerContext(scheduler, 0.0, reason="dequeue")
    assert ctx.virtual_time == 0.0
    ctx.virtual_time = 5.5
    assert scheduler.state["virtual_time"] == 5.5
