"""Tests for the scheduling-algorithm registry."""

import pytest

from repro.errors import ConfigurationError
from repro.sched import (DeficitRoundRobin, SchedulingAlgorithm,
                         available_algorithms, get_algorithm,
                         make_algorithm, register_algorithm)
from repro.sched.framework import PieoScheduler
from repro.sim import FlowQueue, Packet

EXPECTED_NAMES = {
    "drr", "wfq", "wf2q+", "wcwfq", "sfq", "token-bucket", "rcsp",
    "mlfq", "strict-priority", "aging-priority", "sjf", "srtf", "edf",
    "lstf", "tdma",
}


def test_catalogue_is_registered():
    names = set(available_algorithms())
    assert EXPECTED_NAMES <= names
    # FeedbackChannel is a control-plane adapter, not an algorithm.
    assert "feedback" not in names


def test_names_are_sorted():
    names = available_algorithms()
    assert names == sorted(names)


def test_every_entry_instantiates_and_schedules():
    """Each registered factory yields a working SchedulingAlgorithm
    that can rank at least one arrival through a PieoScheduler."""
    for name in available_algorithms():
        algorithm = make_algorithm(name)
        assert isinstance(algorithm, SchedulingAlgorithm), name
        scheduler = PieoScheduler(algorithm, link_rate_bps=10e9)
        scheduler.add_flow(FlowQueue("f", rate_bps=1e9, priority=1))
        scheduler.on_arrival("f", Packet("f"), 0.0)
        assert "f" in scheduler.ordered_list, name


def test_descriptions_present():
    for name in available_algorithms():
        assert get_algorithm(name).description, name


def test_unknown_algorithm():
    with pytest.raises(ConfigurationError,
                       match="unknown scheduling algorithm"):
        make_algorithm("fancy-new-thing")


def test_custom_registration_overwrites():
    register_algorithm("test-only-drr", DeficitRoundRobin, "testing")
    try:
        assert isinstance(make_algorithm("test-only-drr"),
                          DeficitRoundRobin)
    finally:
        from repro.sched.registry import _ALGORITHMS
        del _ALGORITHMS["test-only-drr"]
