"""End-to-end tests for the work-conserving algorithms (Section 4.1):
DRR, WFQ, WF2Q+, SFQ."""

import pytest

from repro.analysis.fairness import jains_index
from repro.core.pieo import PieoHardwareList
from repro.sched import (DeficitRoundRobin, StochasticFairnessQueuing,
                         WF2Qplus, WeightedFairQueuing)
from repro.sim.flow import FlowQueue

from tests.scenarios import FlatRun

MEASURE_START = 0.002
DURATION = 0.02


def fair_share_case(algorithm, weights, tolerance=0.05,
                    ordered_list=None, depth=8):
    run = FlatRun(algorithm, link_gbps=10.0, ordered_list=ordered_list)
    for name, weight in weights.items():
        run.add_backlogged_flow(FlowQueue(name, weight=weight),
                                depth=depth)
    run.run(DURATION)
    rates = run.rates(start=MEASURE_START, end=DURATION)
    total_weight = sum(weights.values())
    for name, weight in weights.items():
        expected = 10e9 * weight / total_weight
        assert rates[name] == pytest.approx(expected, rel=tolerance), name
    assert sum(rates.values()) == pytest.approx(10e9, rel=0.02)
    return rates


# ---------------------------------------------------------------------
# DRR
# ---------------------------------------------------------------------
def test_drr_equal_weights_equal_shares():
    fair_share_case(DeficitRoundRobin(), {"a": 1, "b": 1, "c": 1})


def test_drr_weighted_shares():
    fair_share_case(DeficitRoundRobin(), {"a": 1, "b": 2, "c": 3})


def test_drr_is_work_conserving():
    run = FlatRun(DeficitRoundRobin(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("only"))
    run.run(DURATION)
    assert run.link.utilization(DURATION) > 0.99


def test_drr_handles_mixed_packet_sizes():
    """Byte-level (not packet-level) fairness is DRR's whole point."""
    run = FlatRun(DeficitRoundRobin(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("small"), size_bytes=300, depth=10)
    run.add_backlogged_flow(FlowQueue("large"), size_bytes=1500, depth=10)
    run.run(DURATION)
    rates = run.rates(start=MEASURE_START, end=DURATION)
    assert rates["small"] == pytest.approx(rates["large"], rel=0.1)


def test_drr_deficit_carries_over():
    """A flow whose packet exceeds one quantum must wait extra rounds but
    still get its share."""
    run = FlatRun(DeficitRoundRobin(quantum_bytes=500), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("a"), size_bytes=1500)
    run.add_backlogged_flow(FlowQueue("b"), size_bytes=1500)
    run.run(DURATION)
    rates = run.rates(start=MEASURE_START, end=DURATION)
    assert rates["a"] == pytest.approx(rates["b"], rel=0.05)


def test_drr_validation():
    with pytest.raises(ValueError):
        DeficitRoundRobin(quantum_bytes=0)


# ---------------------------------------------------------------------
# WFQ
# ---------------------------------------------------------------------
def test_wfq_equal_weights_equal_shares():
    fair_share_case(WeightedFairQueuing(), {"a": 1, "b": 1, "c": 1, "d": 1})


def test_wfq_weighted_shares():
    fair_share_case(WeightedFairQueuing(), {"a": 1, "b": 4})


def test_wfq_on_hardware_list():
    fair_share_case(WeightedFairQueuing(), {"a": 1, "b": 2},
                    ordered_list=PieoHardwareList(64, self_check=True))


# ---------------------------------------------------------------------
# WF2Q+
# ---------------------------------------------------------------------
def test_wf2q_equal_weights_equal_shares():
    fair_share_case(WF2Qplus(), {"a": 1, "b": 1, "c": 1})


def test_wf2q_weighted_shares():
    fair_share_case(WF2Qplus(), {"a": 1, "b": 2, "c": 3})


def test_wf2q_on_hardware_list():
    fair_share_case(WF2Qplus(), {"a": 2, "b": 3},
                    ordered_list=PieoHardwareList(64, self_check=True))


def test_wf2q_interleaves_at_packet_timescale():
    """WF2Q+'s worst-case fairness: equal-weight flows alternate almost
    perfectly packet by packet (the property plain WFQ lacks)."""
    run = FlatRun(WF2Qplus(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("a"))
    run.add_backlogged_flow(FlowQueue("b"))
    run.run(0.002)
    order = run.engine.recorder.order()
    longest_run = 1
    current = 1
    for before, after in zip(order, order[1:]):
        current = current + 1 if before == after else 1
        longest_run = max(longest_run, current)
    assert longest_run <= 2


def test_wf2q_virtual_time_monotone():
    run = FlatRun(WF2Qplus(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("a"))
    run.add_backlogged_flow(FlowQueue("b"))
    last = 0.0
    for _ in range(50):
        run.sim.run_until(run.sim.now + 1e-5)
        current = run.scheduler.state.get("virtual_time", 0.0)
        assert current >= last
        last = current


def test_wf2q_idle_flow_does_not_bank_credit():
    """A flow idle for a while must not starve others on return (the
    max(finish, V) clamp)."""
    run = FlatRun(WF2Qplus(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("steady"))
    run.add_backlogged_flow(FlowQueue("late"), start=0.01)
    run.run(0.03)
    late_rates = run.engine.recorder.rate_bps(start=0.012, end=0.03)
    assert late_rates["late"] == pytest.approx(5e9, rel=0.05)
    assert late_rates["steady"] == pytest.approx(5e9, rel=0.05)


# ---------------------------------------------------------------------
# SFQ
# ---------------------------------------------------------------------
def test_sfq_no_collisions_is_fair():
    """With enough buckets (no collisions, checked), SFQ behaves like
    round-robin fair queuing."""
    algorithm = StochasticFairnessQueuing(num_buckets=64)
    names = ["a", "b", "c", "d"]
    buckets = {algorithm.bucket_of(name) for name in names}
    if len(buckets) == len(names):
        fair_share_case(algorithm, {name: 1 for name in names},
                        tolerance=0.1)
    else:  # hash collision with this interpreter's seed: skip silently
        pytest.skip("hash collision in chosen bucket count")


def test_sfq_colliding_flows_share_one_bucket():
    algorithm = StochasticFairnessQueuing(num_buckets=1)
    run = FlatRun(algorithm, link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("x"))
    run.add_backlogged_flow(FlowQueue("y"))
    run.run(DURATION)
    rates = run.rates(start=MEASURE_START, end=DURATION)
    # Both flows collide into the single bucket and split it evenly.
    assert rates["x"] == pytest.approx(rates["y"], rel=0.1)
    assert sum(rates.values()) == pytest.approx(10e9, rel=0.02)


def test_sfq_many_flows_reasonable_fairness():
    algorithm = StochasticFairnessQueuing(num_buckets=32)
    run = FlatRun(algorithm, link_gbps=10.0)
    names = [f"f{i}" for i in range(8)]
    for name in names:
        run.add_backlogged_flow(FlowQueue(name))
    run.run(DURATION)
    rates = run.rates(start=MEASURE_START, end=DURATION)
    assert jains_index(list(rates.values())) > 0.85


def test_sfq_validation():
    with pytest.raises(ValueError):
        StochasticFairnessQueuing(num_buckets=0)
