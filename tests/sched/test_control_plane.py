"""Tests for the control-plane interface (Sections 2.1 / 3.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.sched import (ControlPlane, PieoScheduler, StrictPriority,
                         TokenBucket, WeightedFairQueuing)
from repro.sched.base import TriggerModel
from repro.sim import FlowQueue, Packet, gbps

from tests.scenarios import FlatRun


def test_reads():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("f", weight=2.0, rate_bps=1e9,
                                 priority=3))
    control = ControlPlane(scheduler)
    config = control.flow_config("f")
    assert config == {"weight": 2.0, "rate_bps": 1e9, "priority": 3,
                      "group": 0}
    assert control.flow_state("f") == {}
    assert control.global_state() is scheduler.state


def test_set_priority_reorders_resident_flow():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("a", priority=1))
    scheduler.add_flow(FlowQueue("b", priority=2))
    scheduler.on_arrival("a", Packet("a"), 0.0)
    scheduler.on_arrival("b", Packet("b"), 0.0)
    control = ControlPlane(scheduler)
    control.set_priority("b", 0, now=0.0)
    assert scheduler.schedule(0.0)[0].flow_id == "b"
    assert control.audit_log == [(0.0, "b", "priority", 0)]


def test_set_priority_on_idle_flow_applies_later():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("a", priority=5))
    control = ControlPlane(scheduler)
    control.set_priority("a", 1, now=0.0)
    scheduler.on_arrival("a", Packet("a"), 1.0)
    assert scheduler.ordered_list.snapshot()[0].rank == 1


def test_set_rate_limit_takes_effect_immediately():
    """Raising a live flow's rate limit speeds it up from the next
    packet (output-triggered model)."""
    run = FlatRun(TokenBucket(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("f", rate_bps=gbps(1)), depth=4)
    control = ControlPlane(run.scheduler)
    run.sim.schedule(0.01, lambda: (
        control.set_rate_limit("f", gbps(4), now=run.sim.now),
        run.engine.kick()))
    run.run(0.02)
    before = run.engine.recorder.rate_bps(start=0.002, end=0.0095)["f"]
    after = run.engine.recorder.rate_bps(start=0.0105, end=0.0195)["f"]
    assert before == pytest.approx(gbps(1), rel=0.05)
    assert after == pytest.approx(gbps(4), rel=0.05)


def test_set_weight_shifts_fair_shares():
    run = FlatRun(WeightedFairQueuing(), link_gbps=10.0)
    run.add_backlogged_flow(FlowQueue("a"), depth=4)
    run.add_backlogged_flow(FlowQueue("b"), depth=4)
    control = ControlPlane(run.scheduler)
    run.sim.schedule(0.01,
                     lambda: control.set_weight("a", 3.0, now=run.sim.now))
    run.run(0.02)
    before = run.engine.recorder.rate_bps(start=0.002, end=0.0095)
    after = run.engine.recorder.rate_bps(start=0.011, end=0.0195)
    assert before["a"] == pytest.approx(before["b"], rel=0.05)
    assert after["a"] == pytest.approx(3 * after["b"], rel=0.1)


def test_set_state_for_algorithm_specific_keys():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("f"))
    control = ControlPlane(scheduler)
    control.set_state("f", "deadline_offset", 0.25)
    assert scheduler.flows["f"].state["deadline_offset"] == 0.25


def test_validation():
    scheduler = PieoScheduler(StrictPriority())
    scheduler.add_flow(FlowQueue("f"))
    control = ControlPlane(scheduler)
    with pytest.raises(ConfigurationError):
        control.set_rate_limit("f", 0)
    with pytest.raises(ConfigurationError):
        control.set_weight("f", -1)


def test_input_trigger_keeps_stale_stamp():
    """The Section 3.2.1 precision trade-off: under the input-triggered
    model a resident flow keeps its packet-stamped attributes across a
    configuration change."""
    scheduler = PieoScheduler(TokenBucket(), trigger=TriggerModel.INPUT,
                              link_rate_bps=gbps(10))
    scheduler.add_flow(FlowQueue("f", rate_bps=gbps(1)))
    packet = Packet("f")
    scheduler.on_arrival("f", packet, 0.0)
    stamped = scheduler.ordered_list.snapshot()[0].send_time
    control = ControlPlane(scheduler)
    control.set_rate_limit("f", gbps(4), now=0.0)
    assert scheduler.ordered_list.snapshot()[0].send_time == stamped
    assert scheduler.flows["f"].rate_bps == gbps(4)  # future packets
