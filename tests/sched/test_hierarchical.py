"""Tests for hierarchical scheduling (Section 4.3)."""

import math

import pytest

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList
from repro.core.reference import ReferencePieo
from repro.errors import ConfigurationError
from repro.sched import (DeficitRoundRobin, HierarchicalScheduler,
                         LogicalPieoView, SchedNode, StrictPriority,
                         TokenBucket, WF2Qplus, two_level_tree)
from repro.sim import (BackloggedSource, FlowQueue, Link, Packet, Simulator,
                       TransmitEngine, gbps)


# ---------------------------------------------------------------------
# LogicalPieoView: logical PIEOs sharing a physical PIEO
# ---------------------------------------------------------------------
def test_logical_views_partition_physical_list():
    physical = ReferencePieo()
    view_a = LogicalPieoView(physical, group_id=1)
    view_b = LogicalPieoView(physical, group_id=2)
    view_a.enqueue(Element("a1", rank=5))
    view_b.enqueue(Element("b1", rank=1))
    view_a.enqueue(Element("a2", rank=3))
    assert len(physical) == 3
    assert len(view_a) == 2
    assert len(view_b) == 1
    # Each view extracts its own smallest ranked eligible element.
    assert view_a.dequeue(now=0).flow_id == "a2"
    assert view_b.dequeue(now=0).flow_id == "b1"
    assert "a1" in view_a
    assert "a1" not in view_b


def test_logical_view_on_hardware_list():
    physical = PieoHardwareList(32, self_check=True)
    view_a = LogicalPieoView(physical, group_id=1)
    view_b = LogicalPieoView(physical, group_id=2)
    for index in range(8):
        (view_a if index % 2 else view_b).enqueue(
            Element(index, rank=index))
    assert view_a.dequeue(now=0).flow_id == 1
    assert view_b.dequeue(now=0).flow_id == 0
    assert view_b.min_send_time() == 0


def test_logical_view_dequeue_flow_scoped():
    physical = ReferencePieo()
    view_a = LogicalPieoView(physical, group_id=1)
    view_b = LogicalPieoView(physical, group_id=2)
    view_a.enqueue(Element("x", rank=1))
    assert view_b.dequeue_flow("x") is None
    assert view_a.dequeue_flow("x").flow_id == "x"


def test_logical_view_rejects_explicit_group_range():
    view = LogicalPieoView(ReferencePieo(), group_id=1)
    with pytest.raises(ConfigurationError):
        view.dequeue(now=0, group_range=(0, 1))


def test_logical_view_min_send_time_scoped():
    physical = ReferencePieo()
    view_a = LogicalPieoView(physical, group_id=1)
    view_b = LogicalPieoView(physical, group_id=2)
    view_a.enqueue(Element("a", rank=1, send_time=5))
    view_b.enqueue(Element("b", rank=1, send_time=9))
    assert view_a.min_send_time() == 5
    assert view_b.min_send_time() == 9
    assert math.isinf(LogicalPieoView(physical, group_id=3).min_send_time())


# ---------------------------------------------------------------------
# Tree construction
# ---------------------------------------------------------------------
def test_two_level_tree_shape():
    root, leaves = two_level_tree(TokenBucket(), [WF2Qplus()] * 3,
                                  flows_per_node=4,
                                  node_rate_bps=[1e9, 2e9, 3e9])
    assert len(root.children) == 3
    assert len(leaves) == 12
    assert root.children["n1"].rate_bps == 2e9
    scheduler = HierarchicalScheduler(root)
    assert len(scheduler.level_lists) == 2
    assert scheduler.leaf_parent["n2.f0"] is root.children["n2"]


def test_duplicate_child_rejected():
    node = SchedNode("n", StrictPriority())
    node.add_child(FlowQueue("f"))
    with pytest.raises(ConfigurationError):
        node.add_child(FlowQueue("f"))


def test_node_is_empty_tracks_descendants():
    root, leaves = two_level_tree(StrictPriority(), [StrictPriority()],
                                  flows_per_node=2)
    HierarchicalScheduler(root)
    node = root.children["n0"]
    assert node.is_empty
    leaves[0].push(Packet("n0.f0"))
    assert not node.is_empty


def test_nodes_at_same_level_share_one_physical_pieo():
    root, _leaves = two_level_tree(StrictPriority(),
                                   [StrictPriority()] * 4,
                                   flows_per_node=3)
    scheduler = HierarchicalScheduler(root)
    views = {root.children[f"n{i}"].scheduler.ordered_list._physical
             for i in range(4)}
    assert views == {scheduler.level_lists[1]}


# ---------------------------------------------------------------------
# End-to-end scheduling through the hierarchy
# ---------------------------------------------------------------------
def run_two_level(root_algorithm, node_algorithms, node_rates, duration,
                  flows_per_node=3, list_factory=None):
    sim = Simulator()
    link = Link(gbps(40))
    root, leaves = two_level_tree(root_algorithm, node_algorithms,
                                  flows_per_node=flows_per_node,
                                  node_rate_bps=node_rates)
    scheduler = HierarchicalScheduler(root, link_rate_bps=link.rate_bps,
                                      list_factory=list_factory)
    engine = TransmitEngine(sim, scheduler, link)
    for flow in leaves:
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(duration)
    return engine, scheduler


def test_hierarchy_enforces_node_rate_limits():
    node_rates = [gbps(1), gbps(2), gbps(4)]
    engine, _ = run_two_level(TokenBucket(), [WF2Qplus()] * 3, node_rates,
                              duration=0.02)
    measured = engine.recorder.rate_bps(
        start=0.002, end=0.02, key=lambda fid: fid.split(".")[0])
    for index, rate in enumerate(node_rates):
        assert measured[f"n{index}"] == pytest.approx(rate, rel=0.03)


def test_hierarchy_fair_shares_within_node():
    engine, _ = run_two_level(TokenBucket(), [WF2Qplus()] * 2,
                              [gbps(3), gbps(6)], duration=0.02)
    flow_rates = engine.recorder.rate_bps(start=0.002, end=0.02)
    for node, rate in (("n0", 1e9), ("n1", 2e9)):
        for flow_index in range(3):
            assert flow_rates[f"{node}.f{flow_index}"] == pytest.approx(
                rate, rel=0.05)


def test_hierarchy_on_hardware_lists():
    engine, scheduler = run_two_level(
        TokenBucket(), [WF2Qplus()] * 2, [gbps(2), gbps(4)],
        duration=0.01,
        list_factory=lambda _cap: PieoHardwareList(64, self_check=True))
    measured = engine.recorder.rate_bps(
        start=0.001, end=0.01, key=lambda fid: fid.split(".")[0])
    assert measured["n0"] == pytest.approx(gbps(2), rel=0.05)
    assert measured["n1"] == pytest.approx(gbps(4), rel=0.05)
    for physical in scheduler.level_lists:
        physical.check()


def test_hierarchy_on_pifo_design_lists():
    """The logical-PIEO machinery also runs on the footnote-7
    flip-flop design (any PieoList works as the physical list)."""
    from repro.core.pifo import PifoDesignPieoList
    engine, _ = run_two_level(
        TokenBucket(), [WF2Qplus()] * 2, [gbps(2), gbps(4)],
        duration=0.01,
        list_factory=lambda _cap: PifoDesignPieoList(64))
    measured = engine.recorder.rate_bps(
        start=0.001, end=0.01, key=lambda fid: fid.split(".")[0])
    assert measured["n0"] == pytest.approx(gbps(2), rel=0.05)
    assert measured["n1"] == pytest.approx(gbps(4), rel=0.05)


def test_hierarchy_mixed_policies_per_node():
    """Each node can run a different policy (DRR vs WF2Q+)."""
    engine, _ = run_two_level(TokenBucket(),
                              [DeficitRoundRobin(), WF2Qplus()],
                              [gbps(3), gbps(3)], duration=0.02)
    flow_rates = engine.recorder.rate_bps(start=0.002, end=0.02)
    for node in ("n0", "n1"):
        for flow_index in range(3):
            assert flow_rates[f"{node}.f{flow_index}"] == pytest.approx(
                1e9, rel=0.1)


def test_hierarchy_work_conserving_root():
    """A work-conserving root (strict priority by node) gives the whole
    link to the highest-priority active node."""
    sim = Simulator()
    link = Link(gbps(10))
    root = SchedNode("root", StrictPriority())
    urgent = SchedNode("urgent", WF2Qplus(), priority=0)
    bulk = SchedNode("bulk", WF2Qplus(), priority=5)
    root.add_child(urgent)
    root.add_child(bulk)
    flow_u = FlowQueue("u")
    flow_b = FlowQueue("b")
    urgent.add_child(flow_u)
    bulk.add_child(flow_b)
    scheduler = HierarchicalScheduler(root, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    for flow in (flow_u, flow_b):
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(0.005)
    rates = engine.recorder.rate_bps(start=0.0005, end=0.005)
    assert rates["u"] == pytest.approx(10e9, rel=0.05)
    assert rates.get("b", 0.0) < 1e8


def test_three_level_hierarchy():
    """n-level support: root strict priority -> token-bucket groups ->
    WF2Q+ flows."""
    sim = Simulator()
    link = Link(gbps(10))
    root = SchedNode("root", StrictPriority())
    tenant = SchedNode("tenant", TokenBucket(), priority=0)
    root.add_child(tenant)
    vm_a = SchedNode("vm_a", WF2Qplus(), rate_bps=gbps(1))
    vm_b = SchedNode("vm_b", WF2Qplus(), rate_bps=gbps(2))
    tenant.add_child(vm_a)
    tenant.add_child(vm_b)
    flows = []
    for vm, count in ((vm_a, 2), (vm_b, 2)):
        for index in range(count):
            flow = FlowQueue(f"{vm.flow_id}.f{index}")
            vm.add_child(flow)
            flows.append(flow)
    scheduler = HierarchicalScheduler(root, link_rate_bps=link.rate_bps)
    assert len(scheduler.level_lists) == 3
    engine = TransmitEngine(sim, scheduler, link)
    for flow in flows:
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(0.03)
    rates = engine.recorder.rate_bps(
        start=0.003, end=0.03, key=lambda fid: fid.split(".")[0])
    assert rates["vm_a"] == pytest.approx(gbps(1), rel=0.05)
    assert rates["vm_b"] == pytest.approx(gbps(2), rel=0.05)
