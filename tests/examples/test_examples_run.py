"""Smoke tests: every shipped example runs cleanly and prints its
headline results."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "hierarchical_rate_limiting.py",
            "fair_queueing.py", "custom_algorithm.py",
            "dictionary_adt.py", "tdma_pacing.py"} <= names


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "smallest ranked eligible" not in out  # prose stays in docstring
    assert "4.0 per op" in out
    assert "meets line rate: True" in out


def test_fair_queueing(capsys):
    out = run_example("fair_queueing.py", capsys)
    assert "wf2q+" in out
    assert "5.00G" in out  # gold's weighted share on a 10 Gbps link


def test_hierarchical_rate_limiting(capsys):
    out = run_example("hierarchical_rate_limiting.py", capsys)
    assert "Fig. 11" in out
    assert "Fig. 12" in out
    assert "1.00000" in out  # a perfect Jain index row


def test_custom_algorithm(capsys):
    out = run_example("custom_algorithm.py", capsys)
    assert "[alarm] boosted" in out
    assert "per-flow results" in out


def test_dictionary_adt(capsys):
    out = run_example("dictionary_adt.py", capsys)
    assert "range_keys(50, 500) -> [53, 80, 123, 443]" in out
    assert "NULL semantics" in out


def test_tdma_pacing(capsys):
    out = run_example("tdma_pacing.py", capsys)
    assert "0.000 ns" in out


@pytest.mark.parametrize("name", ["quickstart.py", "dictionary_adt.py",
                                  "fair_queueing.py"])
def test_examples_are_deterministic(name, capsys):
    first = run_example(name, capsys)
    second = run_example(name, capsys)
    assert first == second
