"""Per-switch trace splitting (fabric traces) and the obs CLI views
built on it: summarize/audit/flows/export with ``switch`` labels and
the ``--switch`` filter."""

import json

import pytest

from repro.net import Fabric
from repro.net.topology import leaf_spine
from repro.obs import Tracer
from repro.obs.__main__ import main
from repro.obs.analyze import (split_switches, switch_analyses)
from repro.sim.packet import MTU_BYTES, reset_packet_ids

SWITCHES = ("h0", "h1", "h2", "h3", "l0", "l1", "sp0", "sp1")


def _fabric_events():
    reset_packet_ids(0)
    tracer = Tracer()
    fabric = Fabric(leaf_spine(leaves=2, spines=2, hosts_per_leaf=2),
                    tracer=tracer)
    fabric.open_flow("h0", "h3", 6 * MTU_BYTES)
    fabric.open_flow("h1", "h2", 4 * MTU_BYTES)
    fabric.sim.run()
    return [event.to_dict() for event in tracer.events]


def _write_fabric_trace(path):
    events = _fabric_events()
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")
    return path


class TestSplitSwitches:
    def test_partition_preserves_order_and_labels(self):
        events = _fabric_events()
        buckets = split_switches(events)
        # Every event lands in the bucket its label names.
        for switch, bucket in buckets.items():
            assert all(record.get("switch") == switch
                       for record in bucket)
        assert sum(len(b) for b in buckets.values()) == len(events)
        # Order within a bucket is trace (input) order.
        position = {id(record): index
                    for index, record in enumerate(events)}
        for bucket in buckets.values():
            indices = [position[id(record)] for record in bucket]
            assert indices == sorted(indices)

    def test_unlabelled_events_bucket_under_none(self):
        events = [{"t": 0.0, "kind": "mark", "label": "x"},
                  {"t": 1.0, "kind": "arrival", "flow_id": "f",
                   "size_bytes": 10, "switch": "s0"}]
        buckets = split_switches(events)
        assert set(buckets) == {None, "s0"}

    def test_switch_analyses_one_track_per_hop(self):
        tracks = switch_analyses(_fabric_events())
        names = [switch for switch, _ in tracks]
        # Hosts the flows traversed plus the switch tiers; idle hosts
        # still appear (their NIC traced nothing, so they may not).
        assert set(names) <= set(SWITCHES)
        for expected in ("h0", "h1", "l0", "l1"):
            assert expected in names
        # Every track independently satisfies the packet audit.
        for switch, analysis in tracks:
            assert analysis.audit() == [], switch

    def test_mark_only_unlabelled_bucket_is_dropped(self):
        events = [{"t": 0.0, "kind": "mark", "label": "sweep"}]
        events += _fabric_events()
        names = [switch for switch, _ in switch_analyses(events)]
        assert None not in names

    def test_unlabelled_packets_keep_their_track(self):
        events = [{"t": 0.0, "kind": "arrival", "flow_id": "f",
                   "size_bytes": 10},
                  {"t": 1.0, "kind": "arrival", "flow_id": "g",
                   "size_bytes": 10, "switch": "s0"}]
        tracks = switch_analyses(events)
        assert [switch for switch, _ in tracks] == [None, "s0"]

    def test_single_switch_trace_is_one_track(self):
        events = [{"t": 0.0, "kind": "arrival", "flow_id": "f",
                   "size_bytes": 10}]
        tracks = switch_analyses(events)
        assert len(tracks) == 1 and tracks[0][0] is None


class TestCli:
    def test_summarize_prints_per_switch_blocks(self, tmp_path,
                                                capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        for switch in ("h0", "l0", "l1"):
            assert f"switch {switch}:" in out
        assert "residence mean" in out

    def test_switch_filter_narrows_to_one_track(self, tmp_path,
                                                capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        assert main(["obs", "summarize", str(path),
                     "--switch", "l0"]) == 0
        out = capsys.readouterr().out
        assert "[l0]" in out
        assert "switch l1:" not in out

    def test_switch_filter_unknown_name_errors(self, tmp_path,
                                               capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        assert main(["obs", "summarize", str(path),
                     "--switch", "ghost"]) == 1

    def test_audit_passes_per_switch(self, tmp_path, capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        assert main(["obs", "audit", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_audit_attributes_errors_to_switch(self, tmp_path,
                                               capsys):
        # Corrupt one switch's track: a departure with no arrival.
        path = tmp_path / "bad.jsonl"
        events = _fabric_events()
        events.append({"t": 9.0, "kind": "departure",
                       "flow_id": "ghost", "size_bytes": 10,
                       "packet_id": 10 ** 9, "finish": 9.1,
                       "switch": "l0"})
        with open(path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        assert main(["obs", "audit", str(path)]) == 1
        assert "[l0]" in capsys.readouterr().out

    def test_flows_lists_each_switch_track(self, tmp_path, capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        assert main(["obs", "flows", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[h0]" in out and "[l0]" in out

    def test_export_merges_switch_tracks(self, tmp_path, capsys):
        path = _write_fabric_trace(tmp_path / "fabric.jsonl")
        perfetto = tmp_path / "trace.perfetto.json"
        report = tmp_path / "report.json"
        assert main(["obs", "export", str(path),
                     "--perfetto", str(perfetto),
                     "--report", str(report)]) == 0
        with open(perfetto) as handle:
            trace = json.load(handle)
        # One process (pid) per switch track, disjoint pids.
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert len(pids) >= 4
        names = {event["args"]["name"]
                 for event in trace["traceEvents"]
                 if event.get("ph") == "M"
                 and event.get("name") == "process_name"}
        assert any("[l0]" in name for name in names)
        with open(report) as handle:
            flow_report = json.load(handle)
        assert "switches" in flow_report
        assert "l0" in flow_report["switches"]

    def test_export_single_track_report_unchanged(self, tmp_path):
        # A single-switch trace keeps the flat (non-nested) report.
        tracer = Tracer()
        tracer.arrival(0.0, "f", 1500, packet_id=1)
        tracer.departure(1e-4, "f", 1500, packet_id=1, finish=2e-4)
        path = tmp_path / "flat.jsonl"
        tracer.write_jsonl(path)
        report = tmp_path / "report.json"
        assert main(["obs", "export", str(path),
                     "--report", str(report)]) == 0
        with open(report) as handle:
            flow_report = json.load(handle)
        assert "switches" not in flow_report
