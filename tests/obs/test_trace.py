"""Tracer unit tests: typed events, ring buffer, JSONL export."""

import json
import math

import pytest

from repro.obs import EVENT_KINDS, TraceEvent, Tracer, read_jsonl


def test_typed_emitters_produce_typed_events():
    tracer = Tracer()
    tracer.arrival(0.1, "f0", 1500, packet_id=7)
    tracer.enqueue(0.1, "f0", rank=3, send_time=0)
    tracer.dequeue(0.2, "f0", rank=3)
    tracer.departure(0.2, "f0", 1500, packet_id=7, finish=0.3)
    tracer.drop(0.3, "f1", reason="capacity")
    tracer.timer_arm(0.3, 1, deadline=0.4, scope="engine.retry")
    tracer.timer_fire(0.4, 1, scope="engine.retry")
    tracer.timer_cancel(0.4, 2, scope="sim")
    tracer.kick(0.4, at=0.5)
    tracer.link_busy(0.5, until=0.6, flow_id="f0")
    tracer.link_idle(0.6)
    tracer.mark(0.6, "sweep", target=4.0)
    kinds = [event.kind for event in tracer.events]
    assert kinds == ["arrival", "enqueue", "dequeue", "departure",
                     "drop", "timer_arm", "timer_fire", "timer_cancel",
                     "kick", "link_busy", "link_idle", "mark"]
    assert all(kind in EVENT_KINDS for kind in kinds)
    assert tracer.emitted == 12
    assert tracer.counts["arrival"] == 1
    assert tracer.events[0].get("flow_id") == "f0"
    assert tracer.events[3].get("finish") == 0.3


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown trace event kind"):
        Tracer().emit(0.0, "explosion")


def test_span_measures_wall_clock():
    tracer = Tracer()
    with tracer.span("dequeue", sim_time=1.5) as span:
        sum(range(1000))
    assert span.wall_us is not None and span.wall_us >= 0
    (event,) = tracer.events_of("span")
    assert event.time == 1.5
    assert event.get("name") == "dequeue"
    assert event.get("wall_us") == pytest.approx(span.wall_us, abs=0.01)


def test_ring_buffer_bounds_retention_and_counts_drops():
    tracer = Tracer(capacity=3)
    for index in range(10):
        tracer.kick(float(index))
    assert len(tracer.events) == 3
    assert [event.time for event in tracer.events] == [7.0, 8.0, 9.0]
    assert tracer.emitted == 10
    assert tracer.dropped == 7
    assert tracer.counts["kick"] == 10


def test_zero_capacity_retains_nothing_but_counts():
    tracer = Tracer(capacity=0)
    tracer.kick(0.0)
    assert len(tracer.events) == 0
    assert tracer.emitted == 1


def test_events_of_filters_by_kind():
    tracer = Tracer()
    tracer.kick(0.0)
    tracer.link_idle(1.0)
    tracer.kick(2.0)
    assert [event.time for event in tracer.events_of("kick")] == [0.0, 2.0]
    assert len(tracer.events_of("kick", "link_idle")) == 3


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    tracer.enqueue(0.25, "f0", rank=3, send_time=math.inf)
    tracer.departure(0.5, "f0", 1500, packet_id=1, finish=0.6)
    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(path) == 2
    records = read_jsonl(path)
    assert records[0]["kind"] == "enqueue"
    # Non-finite floats are string-encoded on disk (strict JSON) and
    # revived to floats by read_jsonl.
    assert records[0]["send_time"] == math.inf
    assert records[1] == {"t": 0.5, "kind": "departure", "flow_id": "f0",
                          "size_bytes": 1500, "packet_id": 1,
                          "finish": 0.6}
    # Every line parses under the strict (default-forbidding) decoder,
    # i.e. the on-disk representation never contains bare Infinity/NaN.
    for line in path.read_text().splitlines():
        record = json.loads(line, parse_constant=lambda _: pytest.fail(
            "non-strict JSON constant leaked into the export"))
        assert record["kind"] != "enqueue" or record["send_time"] == "inf"


def test_jsonl_round_trip_non_finite_and_empty(tmp_path):
    """read_jsonl ∘ write_jsonl is the identity for every numeric field,
    non-finite floats included (satellite: inf/nan ranks + deadlines)."""
    tracer = Tracer()
    tracer.enqueue(0.0, "f0", rank=math.inf, send_time=-math.inf)
    tracer.enqueue(0.1, "f1", rank=math.nan, send_time=0.0)
    tracer.timer_arm(0.2, 1, deadline=math.inf, scope="engine.retry")
    tracer.dequeue(0.3, "f0", rank=math.inf, eligible_at=math.nan)
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    records = read_jsonl(path)
    assert records[0]["rank"] == math.inf
    assert records[0]["send_time"] == -math.inf
    assert math.isnan(records[1]["rank"])
    assert records[2]["deadline"] == math.inf
    assert math.isnan(records[3]["eligible_at"])
    # Non-numeric fields are never revived, even if they look numeric.
    tracer2 = Tracer()
    tracer2.drop(0.0, "f0", reason="inf")
    tracer2.write_jsonl(path)
    assert read_jsonl(path)[0]["reason"] == "inf"


def test_jsonl_empty_trace(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert Tracer().write_jsonl(path) == 0
    assert read_jsonl(path) == []


def test_read_jsonl_rejects_corruption(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"t": 0.0, "kind": "kick"}\n{"t": 0.1, "ki\n')
    with pytest.raises(ValueError, match=r"bad\.jsonl:2.*malformed"):
        read_jsonl(path)
    path.write_text('[1, 2, 3]\n')
    with pytest.raises(ValueError, match="not a JSON object"):
        read_jsonl(path)


def test_streaming_sink_writes_as_events_happen(tmp_path):
    path = tmp_path / "stream.jsonl"
    tracer = Tracer.open_jsonl(path)
    tracer.kick(0.0)
    tracer.link_idle(1.0)
    tracer.close()
    records = read_jsonl(path)
    assert [record["kind"] for record in records] == ["kick", "link_idle"]
    assert len(tracer.events) == 0  # streaming mode retains nothing


def test_trace_event_json_is_compact():
    event = TraceEvent(0.125, "kick", {"at": 0.25})
    assert event.to_json() == '{"t":0.125,"kind":"kick","at":0.25}'


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.kick(0.0)
    assert tracer.emitted == 0 and len(tracer.events) == 0
