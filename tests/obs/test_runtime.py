"""Runtime telemetry: attribution, phase timers, reports, heartbeat.

Everything here is deterministic — synthetic frame stacks stand in for
sampled ones, and phase timers / heartbeats run on injected fake
clocks, so no assertion depends on host timing.
"""

from __future__ import annotations

import io
import sys

import pytest

from repro.obs import Tracer
from repro.obs.runtime import (NULL_HEARTBEAT, NULL_RUNTIME_PROFILER,
                               OTHER, PhaseTimer, RuntimeProfiler,
                               RuntimeReport, SamplingProfiler,
                               SweepHeartbeat, attribute_frame,
                               attribute_stack, component_of)
from repro.obs.scope import NULL_SPAN


class FakeClock:
    """Deterministic clock: advances only when told."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> None:
        self.now += delta


# ----------------------------------------------------------------------
# Component attribution
# ----------------------------------------------------------------------
class TestComponentOf:
    def test_two_segment_truncation(self):
        assert component_of("repro.sim.events") == "sim.events"
        assert component_of(
            "repro.core.pieo.structures") == "core.pieo"

    def test_single_segment(self):
        assert component_of("repro.errors") == "errors"

    def test_package_root(self):
        assert component_of("repro") == "repro"

    def test_non_repro_modules(self):
        assert component_of("heapq") is None
        assert component_of("reproach.fake") is None
        assert component_of(None) is None
        assert component_of("") is None

    def test_profiler_excludes_itself(self):
        assert component_of("repro.obs.runtime") is None


class TestAttributeStack:
    def test_innermost_repro_frame_wins(self):
        assert attribute_stack(
            ["repro.core.backends",
             "repro.experiments.runner"]) == "core.backends"

    def test_stdlib_charged_to_repro_caller(self):
        assert attribute_stack(
            ["heapq", "repro.sim.events",
             "repro.experiments.runner"]) == "sim.events"

    def test_no_repro_frame_is_other(self):
        assert attribute_stack(["heapq", "_pytest.python"]) == OTHER
        assert attribute_stack([]) == OTHER

    def test_profiler_own_frames_skipped(self):
        assert attribute_stack(
            ["repro.obs.runtime", "repro.sched.wf2q"]) == "sched.wf2q"


def make_callable(module: str, inner=None):
    """A function whose frame claims to live in ``module``.

    When ``inner`` is given it calls through, so chains build real
    nested frames with synthetic module names; the innermost returns
    its own live frame.
    """
    namespace = {"__name__": module, "inner": inner, "sys": sys}
    exec("def fn():\n"
         "    return inner() if inner is not None "
         "else sys._getframe()\n", namespace)
    return namespace["fn"]


class TestAttributeFrame:
    def test_walks_to_nearest_repro_caller(self):
        chain = make_callable(
            "repro.sim.events", make_callable("heapq"))
        assert attribute_frame(chain()) == "sim.events"

    def test_innermost_repro_component_wins(self):
        chain = make_callable(
            "repro.experiments.runner",
            make_callable("repro.core.backends"))
        assert attribute_frame(chain()) == "core.backends"

    def test_foreign_stack_is_other(self):
        # The test module itself is not a repro.* module, so a chain of
        # stdlib-named frames attributes to OTHER.
        chain = make_callable("json", make_callable("heapq"))
        assert attribute_frame(chain()) == OTHER


# ----------------------------------------------------------------------
# Phase timers
# ----------------------------------------------------------------------
class TestPhaseTimer:
    def test_exclusive_nested_accounting(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("outer"):
            clock.advance(1.0)
            with timer.phase("inner"):
                clock.advance(0.5)
            clock.advance(2.0)
        assert timer.totals == {"outer": 3.0, "inner": 0.5}
        assert timer.counts == {"outer": 1, "inner": 1}

    def test_repeated_phases_accumulate(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        for _ in range(3):
            with timer.phase("run"):
                clock.advance(0.25)
        assert timer.totals["run"] == pytest.approx(0.75)
        assert timer.counts["run"] == 3

    def test_nesting_violation_raises(self):
        timer = PhaseTimer(clock=FakeClock())
        timer._enter("a")
        with pytest.raises(RuntimeError, match="nesting violated"):
            timer._exit("b")

    def test_snapshot_shape(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("only"):
            clock.advance(1.5)
        assert timer.snapshot() == {
            "only": {"wall_s": 1.5, "count": 1}}


# ----------------------------------------------------------------------
# Runtime reports
# ----------------------------------------------------------------------
def sample_report() -> RuntimeReport:
    return RuntimeReport(
        wall_s=2.0, interval_s=0.002,
        samples={"sim.events": 6, "core.backends": 3, OTHER: 1},
        phases={"fig12": {"wall_s": 1.9, "count": 1}},
        overhead_s=0.01)


class TestRuntimeReport:
    def test_fractions_and_attribution(self):
        report = sample_report()
        assert report.total_samples == 10
        assert report.fractions()["sim.events"] == pytest.approx(0.6)
        assert report.attributed_fraction() == pytest.approx(0.9)

    def test_empty_report(self):
        report = RuntimeReport()
        assert report.total_samples == 0
        assert report.fractions() == {}
        assert report.attributed_fraction() == 0.0

    def test_round_trip(self):
        report = sample_report()
        restored = RuntimeReport.from_dict(report.to_dict())
        assert restored == report

    def test_to_dict_is_tagged(self):
        record = sample_report().to_dict()
        assert record["schema_version"] == 1
        assert record["kind"] == "runtime_profile"
        assert record["attributed_fraction"] == pytest.approx(0.9)

    @pytest.mark.parametrize("record, message", [
        ("not a dict", "not a JSON object"),
        ({"kind": "runtime_profile"}, "unsupported"),
        ({"schema_version": 99, "kind": "runtime_profile"},
         "unsupported"),
        ({"schema_version": 1, "kind": "trace"}, "not a runtime"),
        ({"schema_version": 1, "kind": "runtime_profile",
          "samples": ["list"]}, "must be objects"),
        ({"schema_version": 1, "kind": "runtime_profile",
          "samples": {"sim.events": -2}}, "non-negative"),
        ({"schema_version": 1, "kind": "runtime_profile",
          "samples": {"sim.events": 1.5}}, "non-negative"),
    ])
    def test_malformed_raises(self, record, message):
        with pytest.raises(ValueError, match=message):
            RuntimeReport.from_dict(record)

    def test_merge_accumulates(self):
        combined = sample_report().merge(RuntimeReport(
            wall_s=1.0, interval_s=0.002,
            samples={"sim.events": 4, "sched.wf2q": 2},
            phases={"fig12": {"wall_s": 0.9, "count": 1},
                    "fig11": {"wall_s": 0.1, "count": 2}},
            overhead_s=0.005))
        assert combined.wall_s == pytest.approx(3.0)
        assert combined.samples == {
            "sim.events": 10, "core.backends": 3, OTHER: 1,
            "sched.wf2q": 2}
        assert combined.phases["fig12"] == {"wall_s": 2.8, "count": 2}
        assert combined.phases["fig11"] == {"wall_s": 0.1, "count": 2}
        assert combined.overhead_s == pytest.approx(0.015)

    def test_to_text_mentions_components_and_phases(self):
        text = sample_report().to_text()
        assert "sim.events" in text
        assert "90.0% attributed" in text
        assert "fig12" in text


# ----------------------------------------------------------------------
# Profiler facades
# ----------------------------------------------------------------------
class TestRuntimeProfiler:
    def test_phase_only_profiler_is_deterministic(self):
        clock = FakeClock()
        profiler = RuntimeProfiler(sample=False, clock=clock)
        with profiler:
            with profiler.phase("work"):
                clock.advance(1.0)
            clock.advance(0.5)
        report = profiler.report()
        assert report.wall_s == pytest.approx(1.5)
        assert report.phases == {"work": {"wall_s": 1.0, "count": 1}}
        assert report.samples == {}

    def test_double_start_raises(self):
        profiler = RuntimeProfiler(sample=False, clock=FakeClock())
        profiler.start()
        with pytest.raises(RuntimeError, match="already started"):
            profiler.start()
        profiler.stop()

    def test_sampler_lifecycle(self):
        profiler = RuntimeProfiler(interval_s=0.001)
        with profiler:
            assert profiler.sampler.running
        assert not profiler.sampler.running
        # No timing assertion: only that the report is well-formed.
        report = profiler.report()
        assert report.total_samples >= 0
        assert report.interval_s == 0.001

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(interval_s=0.0)


class TestNullRuntimeProfiler:
    def test_phase_is_shared_null_span(self):
        assert NULL_RUNTIME_PROFILER.phase("anything") is NULL_SPAN

    def test_lifecycle_noops(self):
        with NULL_RUNTIME_PROFILER as profiler:
            assert profiler is NULL_RUNTIME_PROFILER
        assert NULL_RUNTIME_PROFILER.start() is NULL_RUNTIME_PROFILER
        assert NULL_RUNTIME_PROFILER.stop() is NULL_RUNTIME_PROFILER

    def test_report_empty(self):
        assert NULL_RUNTIME_PROFILER.report() == RuntimeReport()

    def test_enabled_flags(self):
        assert RuntimeProfiler.enabled
        assert not NULL_RUNTIME_PROFILER.enabled


# ----------------------------------------------------------------------
# Sweep heartbeat
# ----------------------------------------------------------------------
def heartbeat_marks(tracer):
    return [event.fields for event in tracer.events
            if event.fields.get("label") == "sweep.heartbeat"]


class TestSweepHeartbeat:
    def test_sequential_points_report_progress(self):
        clock, stream = FakeClock(), io.StringIO()
        tracer = Tracer()
        pulse = SweepHeartbeat(stream=stream, tracer=tracer,
                               clock=clock)
        pulse.begin(2, jobs=1)
        with pulse.point(0):
            clock.advance(2.0)
        with pulse.point(1):
            clock.advance(4.0)
        pulse.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[sweep] starting 2 point(s), jobs=1"
        assert "1/2 done | point 0: 2.000s" in lines[1]
        assert "eta 2.00s" in lines[1]
        assert "2/2 done | point 1: 4.000s" in lines[2]
        assert "eta" not in lines[2]
        assert "2/2 points in 6.00s" in lines[3]
        assert "all workers healthy" in lines[3]
        marks = heartbeat_marks(tracer)
        phases = [mark["phase"] for mark in marks]
        assert phases == ["begin", "point", "point", "finish"]
        assert marks[1]["wall_s"] == pytest.approx(2.0)
        assert marks[2]["done"] == 2

    def test_eta_accounts_for_jobs(self):
        pulse = SweepHeartbeat(stream=io.StringIO(), clock=FakeClock())
        pulse.begin(9, jobs=4)
        pulse.point_done(0, 2.0)
        # 8 points remain over 4 workers at 2 s each.
        assert pulse.eta_s() == pytest.approx(4.0)

    def test_failure_reported_and_reraised(self):
        clock, stream = FakeClock(), io.StringIO()
        tracer = Tracer()
        pulse = SweepHeartbeat(stream=stream, tracer=tracer,
                               clock=clock)
        pulse.begin(1)
        with pytest.raises(ValueError, match="boom"):
            with pulse.point(0):
                raise ValueError("boom")
        pulse.finish()
        output = stream.getvalue()
        assert "point 0 FAILED: ValueError('boom')" in output
        assert "1 failure(s)" in output
        failed = [mark for mark in heartbeat_marks(tracer)
                  if mark["phase"] == "failed"]
        assert failed[0]["error"] == "ValueError('boom')"

    def test_min_interval_throttles_lines_not_marks(self):
        clock, stream = FakeClock(), io.StringIO()
        tracer = Tracer()
        pulse = SweepHeartbeat(stream=stream, tracer=tracer,
                               clock=clock, min_interval_s=10.0)
        pulse.begin(3)
        for index in range(3):
            with pulse.point(index):
                clock.advance(1.0)
        progress = [line for line in stream.getvalue().splitlines()
                    if "done | point" in line]
        # First and final points always print; the middle is throttled.
        assert len(progress) == 2
        marks = [mark for mark in heartbeat_marks(tracer)
                 if mark["phase"] == "point"]
        assert len(marks) == 3

    def test_works_without_tracer(self):
        pulse = SweepHeartbeat(stream=io.StringIO(), clock=FakeClock())
        pulse.begin(1)
        with pulse.point(0):
            pass
        pulse.finish()  # no tracer attached: lines only, no error


class TestNullSweepHeartbeat:
    def test_all_noops(self):
        NULL_HEARTBEAT.begin(5, jobs=2)
        with NULL_HEARTBEAT.point(0):
            pass
        NULL_HEARTBEAT.point_done(0, 1.0)
        NULL_HEARTBEAT.point_failed(0, ValueError())
        NULL_HEARTBEAT.finish()
        assert NULL_HEARTBEAT.point(0) is NULL_SPAN
