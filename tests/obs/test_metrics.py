"""Metrics unit tests: counters, gauges, histograms, registry export."""

import json
import math

import pytest

from repro.obs import (Counter, DEPTH_BUCKETS, Gauge, Histogram,
                       LogHistogram, MetricsRegistry)


def test_counter_accumulates():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_gauge_tracks_watermarks():
    gauge = Gauge()
    gauge.set(5)
    gauge.dec(7)
    gauge.inc(10)
    assert gauge.value == 8
    assert gauge.min == -2
    assert gauge.max == 8
    gauge.reset()
    assert gauge.value == 0.0 and gauge.min is None and gauge.max is None


def test_histogram_buckets_and_exact_stats():
    histogram = Histogram(buckets=(1, 10, 100))
    for value in (0.5, 1.0, 5, 50, 500):
        histogram.observe(value)
    # bounds are inclusive upper bounds; one overflow bucket at the end
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(556.5)
    assert histogram.mean == pytest.approx(111.3)
    assert histogram.min == 0.5 and histogram.max == 500


def test_histogram_quantile_is_bucket_upper_bound():
    histogram = Histogram(buckets=(1, 10, 100))
    for value in (0.5, 2, 3, 20, 500):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 10.0
    assert histogram.quantile(1.0) == math.inf  # overflow bucket
    assert Histogram(buckets=(1,)).quantile(0.5) == 0.0  # empty
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(10, 1))


def test_depth_buckets_cover_full_scale_lists():
    """Paper-scale N = 32K element lists must not land every depth
    sample in the overflow bucket."""
    assert DEPTH_BUCKETS[-1] >= 32768
    histogram = Histogram()  # DEPTH_BUCKETS default
    histogram.observe(32768)
    assert histogram.overflow == 0


def test_histogram_overflow_is_explicit():
    histogram = Histogram(buckets=(1, 10))
    for value in (0.5, 5, 100, 200):
        histogram.observe(value)
    assert histogram.overflow == 2
    assert histogram.counts == [1, 1, 2]


def test_log_histogram_buckets_and_exact_stats():
    histogram = LogHistogram(min_value=1.0, max_value=1e4)
    for value in (0.5, 1.0, 3.0, 250.0, 1e6):
        histogram.observe(value)
    assert histogram.underflow == 2  # <= min_value
    assert histogram.overflow == 1   # > max_value
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(1000254.5)
    assert histogram.min == 0.5 and histogram.max == 1e6
    # Every in-range value lands in the bucket whose bound brackets it.
    for value, total in ((3.0, 1), (250.0, 1)):
        index = next(i for i, bound in enumerate(histogram.bounds)
                     if bound >= value)
        lower = (histogram.min_value if index == 0
                 else histogram.bounds[index - 1])
        assert lower < value <= histogram.bounds[index]
        assert histogram.counts[index] == total


def test_log_histogram_quantiles_bounded_relative_error():
    histogram = LogHistogram(min_value=1e-3, max_value=1e7)
    samples = [1.0 * 1.01 ** index for index in range(1000)]
    for value in samples:
        histogram.observe(value)
    samples.sort()
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = samples[math.ceil(q * len(samples)) - 1]
        assert histogram.quantile(q) == pytest.approx(exact, rel=0.13)
    # Quantiles are clamped to the exact observed range.
    assert histogram.quantile(0.0) >= histogram.min
    assert histogram.quantile(1.0) == histogram.max


def test_log_histogram_empty_and_validation():
    histogram = LogHistogram()
    assert histogram.quantile(0.5) == 0.0
    assert histogram.mean == 0.0
    with pytest.raises(ValueError):
        histogram.quantile(2.0)
    with pytest.raises(ValueError):
        LogHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        LogHistogram(min_value=10.0, max_value=1.0)
    with pytest.raises(ValueError):
        LogHistogram(growth=1.0)


def test_log_histogram_cumulative_buckets_are_monotone():
    histogram = LogHistogram(min_value=1.0, max_value=100.0)
    for value in (0.5, 2.0, 30.0, 500.0):
        histogram.observe(value)
    pairs = histogram.cumulative_buckets()
    assert pairs[0] == (1.0, 1)  # underflow surfaces as le=min_value
    cumulatives = [cumulative for _, cumulative in pairs]
    assert cumulatives == sorted(cumulatives)
    # +Inf bucket (added by exporters) closes the gap to count.
    assert cumulatives[-1] + histogram.overflow == histogram.count


def test_registry_instruments_are_idempotent_per_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.log_histogram("lh") is registry.log_histogram("lh")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("arrivals").inc(3)
    registry.gauge("depth").set(7)
    registry.histogram("batch", buckets=(1, 2)).observe(2)
    snapshot = registry.to_dict()
    assert snapshot["counters"] == {"arrivals": 3}
    assert snapshot["gauges"]["depth"] == {"value": 7, "min": 7, "max": 7}
    histogram = snapshot["histograms"]["batch"]
    assert histogram["buckets"] == [1, 2]
    assert histogram["counts"] == [0, 1, 0]
    assert histogram["count"] == 1
    assert histogram["overflow"] == 0
    registry.log_histogram("lat", min_value=1.0, max_value=10.0)
    registry.log_histogram("lat").observe(3.0)
    snapshot = registry.to_dict()
    log_histogram = snapshot["log_histograms"]["lat"]
    assert log_histogram["count"] == 1
    assert log_histogram["quantiles"]["p50"] == pytest.approx(3.0)
    assert registry.snapshot() == snapshot


def test_registry_write_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc()
    path = tmp_path / "metrics.json"
    registry.write_json(path)
    assert json.loads(path.read_text())["counters"] == {"a": 1}
