"""Metrics unit tests: counters, gauges, histograms, registry export."""

import json
import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_accumulates():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_gauge_tracks_watermarks():
    gauge = Gauge()
    gauge.set(5)
    gauge.dec(7)
    gauge.inc(10)
    assert gauge.value == 8
    assert gauge.min == -2
    assert gauge.max == 8
    gauge.reset()
    assert gauge.value == 0.0 and gauge.min is None and gauge.max is None


def test_histogram_buckets_and_exact_stats():
    histogram = Histogram(buckets=(1, 10, 100))
    for value in (0.5, 1.0, 5, 50, 500):
        histogram.observe(value)
    # bounds are inclusive upper bounds; one overflow bucket at the end
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(556.5)
    assert histogram.mean == pytest.approx(111.3)
    assert histogram.min == 0.5 and histogram.max == 500


def test_histogram_quantile_is_bucket_upper_bound():
    histogram = Histogram(buckets=(1, 10, 100))
    for value in (0.5, 2, 3, 20, 500):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 10.0
    assert histogram.quantile(1.0) == math.inf  # overflow bucket
    assert Histogram(buckets=(1,)).quantile(0.5) == 0.0  # empty
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=())
    with pytest.raises(ValueError):
        Histogram(buckets=(10, 1))


def test_registry_instruments_are_idempotent_per_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("arrivals").inc(3)
    registry.gauge("depth").set(7)
    registry.histogram("batch", buckets=(1, 2)).observe(2)
    snapshot = registry.to_dict()
    assert snapshot["counters"] == {"arrivals": 3}
    assert snapshot["gauges"]["depth"] == {"value": 7, "min": 7, "max": 7}
    histogram = snapshot["histograms"]["batch"]
    assert histogram["buckets"] == [1, 2]
    assert histogram["counts"] == [0, 1, 0]
    assert histogram["count"] == 1
    assert registry.snapshot() == snapshot


def test_registry_write_json(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc()
    path = tmp_path / "metrics.json"
    registry.write_json(path)
    assert json.loads(path.read_text())["counters"] == {"a": 1}
