"""Per-port observability: labelled tracer views, scoped metrics
views, port-aware analysis/audits, and the per-port Perfetto split."""

import pytest

from repro.obs import (NULL_METRICS, NULL_TRACER, MetricsRegistry,
                       TraceAnalysis, Tracer)
from repro.obs.export import perfetto_trace
from repro.obs.metrics import ScopedMetrics, scoped
from repro.obs.trace import LabelledTracer, labelled


# ----------------------------------------------------------------------
# LabelledTracer
# ----------------------------------------------------------------------
def test_labelled_tracer_stamps_every_event():
    tracer = Tracer()
    view = labelled(tracer, port="p0")
    view.arrival(0.0, "f0", 1500, packet_id=1)
    view.drop(1.0, "f0", reason="buffer:bytes")
    assert all(event.fields["port"] == "p0" for event in tracer.events)
    # Storage lives on the base: the view has no buffer of its own.
    assert view.events is tracer.events


def test_labelled_tracer_explicit_fields_win():
    tracer = Tracer()
    view = LabelledTracer(tracer, port="p0")
    view.emit(0.0, "mark", port="override", label="x")
    assert tracer.events[0].fields["port"] == "override"


def test_labelled_views_nest_inner_wins():
    tracer = Tracer()
    inner = labelled(labelled(tracer, port="outer"), port="inner")
    inner.kick(0.0)
    assert tracer.events[0].fields["port"] == "inner"


def test_labelled_passthrough_identities():
    """None, the null tracer, and empty labels pass through unchanged
    so `tracer is NULL_TRACER` fast paths stay meaningful."""
    assert labelled(None, port="p0") is None
    assert labelled(NULL_TRACER, port="p0") is NULL_TRACER
    tracer = Tracer()
    assert labelled(tracer) is tracer


# ----------------------------------------------------------------------
# ScopedMetrics
# ----------------------------------------------------------------------
def test_scoped_metrics_prefixes_names():
    registry = MetricsRegistry()
    view = scoped(registry, "port.p0")
    view.counter("engine.arrivals").inc()
    view.gauge("sched.queue_depth").set(3)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["port.p0.engine.arrivals"] == 1
    assert snapshot["gauges"]["port.p0.sched.queue_depth"][
        "value"] == 3


def test_scoped_metrics_nest_outer_first():
    registry = MetricsRegistry()
    view = ScopedMetrics(ScopedMetrics(registry, "port.p1"), "engine")
    view.counter("departures").inc(2)
    assert registry.snapshot()["counters"][
        "port.p1.engine.departures"] == 2


def test_scoped_rejects_empty_prefix():
    with pytest.raises(ValueError):
        ScopedMetrics(MetricsRegistry(), "")


def test_scoped_passthrough_identities():
    assert scoped(None, "port.p0") is None
    assert scoped(NULL_METRICS, "port.p0") is NULL_METRICS


def test_scoped_counters_share_the_base_registry():
    """Two ports scoped over one registry produce disjoint series that
    aggregate in one snapshot — the per-port Prometheus contract."""
    registry = MetricsRegistry()
    for port in ("p0", "p1"):
        scoped(registry, f"port.{port}").counter("drops").inc()
    counters = registry.snapshot()["counters"]
    assert counters["port.p0.drops"] == 1
    assert counters["port.p1.drops"] == 1


# ----------------------------------------------------------------------
# Port-aware analysis
# ----------------------------------------------------------------------
def _two_port_trace():
    """One delivered packet on p0, one dropped arrival on p1, one
    unlabelled kick."""
    tracer = Tracer()
    p0 = labelled(tracer, port="p0")
    p1 = labelled(tracer, port="p1")
    p0.arrival(0.0, "f0", 1500, packet_id=1)
    p0.enqueue(0.0, "f0", rank=0.0, send_time=0.0, eligible=True)
    p0.dequeue(1.0, "f0", rank=0.0, send_time=0.0, eligible_at=0.0)
    p0.departure(1.0, "f0", 1500, packet_id=1, finish=2.0)
    p1.arrival(0.5, "g0", 1500, packet_id=2)
    p1.drop(0.5, "g0", reason="buffer:bytes", packet_id=2)
    tracer.kick(0.2)
    return tracer


def test_port_summary_splits_by_label():
    summary = TraceAnalysis(_two_port_trace().events).port_summary()
    assert set(summary) == {"p0", "p1"}
    assert summary["p0"]["arrivals"] == 1
    assert summary["p0"]["delivered"] == 1
    assert summary["p0"]["drops"] == 0
    assert summary["p1"]["drops"] == 1
    assert summary["p1"]["drop_reasons"] == {"buffer:bytes": 1}


def test_port_summary_unlabelled_trace_uses_none_bucket():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.departure(1.0, "f0", 1500, packet_id=1, finish=2.0)
    summary = TraceAnalysis(tracer.events).port_summary()
    assert set(summary) == {None}
    assert summary[None]["delivered"] == 1


def _departure(view, t, flow_id, packet_id, finish):
    view.arrival(t, flow_id, 1500, packet_id=packet_id)
    view.departure(t, flow_id, 1500, packet_id=packet_id,
                   finish=finish)


def test_cross_port_departure_overlap_is_legitimate():
    """Two links serialize concurrently in wall time — the link-overlap
    audit must not flag windows from different ports."""
    tracer = Tracer()
    _departure(labelled(tracer, port="p0"), 0.0, "f0", 1, 1.0)
    _departure(labelled(tracer, port="p1"), 0.5, "g0", 2, 1.5)
    analysis = TraceAnalysis(tracer.events)
    assert not [issue for issue in analysis.audit()
                if "serializing" in issue.message]


def test_same_port_departure_overlap_is_an_error():
    tracer = Tracer()
    view = labelled(tracer, port="p0")
    _departure(view, 0.0, "f0", 1, 1.0)
    _departure(view, 0.5, "f1", 2, 1.5)  # starts mid-serialization
    analysis = TraceAnalysis(tracer.events)
    errors = [issue for issue in analysis.errors
              if "serializing" in issue.message]
    assert len(errors) == 1
    assert "port p0" in errors[0].message


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
def _pids(trace):
    metadata = [event for event in trace["traceEvents"]
                if event.get("name") == "process_name"]
    return {event["args"]["name"]: event["pid"] for event in metadata}


def test_perfetto_multi_port_trace_gets_one_pid_per_port():
    trace = perfetto_trace(TraceAnalysis(_two_port_trace().events))
    names = _pids(trace)
    port_names = {name for name in names if "[port" in name}
    assert {"pieo-sim [port p0]", "pieo-sim [port p1]"} <= port_names
    assert len({names[name] for name in names}) == len(names)


def test_perfetto_unlabelled_trace_keeps_single_pid():
    tracer = Tracer()
    _departure(tracer, 0.0, "f0", 1, 1.0)
    trace = perfetto_trace(TraceAnalysis(tracer.events))
    assert set(_pids(trace).values()) == {1}
    assert all(event["pid"] == 1 for event in trace["traceEvents"])
