"""CLI tests for ``python -m repro.obs``."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.__main__ import main


def _write_trace(path, corrupt=False):
    tracer = Tracer()
    tracer.mark(0.0, "test.run", target=4.0)
    tracer.arrival(0.0, "n0.f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "n0.f0", rank=0.0, send_time=2e-4,
                   eligible=False)
    tracer.dequeue(3e-4, "n0.f0", rank=0.0, send_time=2e-4,
                   eligible_at=2e-4)
    tracer.departure(3e-4, "n0.f0", 1500, packet_id=1, finish=3.5e-4)
    tracer.write_jsonl(path)
    if corrupt:
        with open(path, "a") as handle:
            handle.write('{"t": 4.0, "ki\n')
    return path


def test_summarize_prints_attribution(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "test.run [target=4.0]" in out
    assert "1 delivered" in out
    assert "n0.f0" in out
    # queue + elig + ser = e2e, all in microseconds.
    assert "100" in out  # queueing (100 us)
    assert "200" in out  # eligibility (200 us)
    assert "50" in out   # serialization (50 us)
    assert "350" in out  # end-to-end (350 us)


def test_flows_and_timeline_commands(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "flows", str(path)]) == 0
    assert "p999_us" in capsys.readouterr().out
    assert main(["obs", "timeline", str(path), "--flow", "n0.f0"]) == 0
    out = capsys.readouterr().out
    assert "pkt 1 [n0.f0]" in out and "elig 200.0us" in out


def test_audit_ok_on_clean_trace(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "audit", str(path)]) == 0
    assert "ok" in capsys.readouterr().out


def test_audit_fails_on_corrupt_trace(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl", corrupt=True)
    assert main(["obs", "audit", str(path)]) == 1
    assert "malformed" in capsys.readouterr().err


def test_audit_fails_on_truncated_trace(tmp_path, capsys):
    """A trace whose arrivals were ring-evicted (departure without
    arrival) must fail the audit loudly."""
    tracer = Tracer()
    tracer.departure(1.0, "f0", 1500, packet_id=9, finish=1.5,
                     arrival_t=0.5)
    path = tmp_path / "trunc.jsonl"
    tracer.write_jsonl(path)
    assert main(["obs", "audit", str(path)]) == 1
    assert "error" in capsys.readouterr().out


def test_audit_missing_file_exits_2(tmp_path, capsys):
    assert main(["obs", "audit", str(tmp_path / "nope.jsonl")]) == 2


def test_run_selector_bounds(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "summarize", str(path), "--run", "5"]) == 1
    assert "out of range" in capsys.readouterr().err
    assert main(["obs", "summarize", str(path), "--run", "0"]) == 0


def test_export_writes_all_artifacts(tmp_path, capsys):
    path = _write_trace(tmp_path / "t.jsonl")
    perfetto = tmp_path / "p.json"
    report = tmp_path / "r.json"
    metrics = tmp_path / "m.json"
    metrics.write_text(json.dumps(
        {"counters": {"engine.arrivals": 1}}))
    prom = tmp_path / "m.prom"
    assert main(["obs", "export", str(path),
                 "--perfetto", str(perfetto), "--report", str(report),
                 "--metrics-json", str(metrics),
                 "--prometheus", str(prom)]) == 0
    trace = json.loads(perfetto.read_text())
    assert any(event["ph"] == "X" for event in trace["traceEvents"])
    flows = json.loads(report.read_text())
    assert "n0.f0" in flows["flows"]
    assert "repro_engine_arrivals_total 1" in prom.read_text()


def test_export_requires_some_output(tmp_path):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "export", str(path)]) == 2


def test_export_prometheus_requires_metrics_json(tmp_path):
    path = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "export", str(path),
                 "--prometheus", str(tmp_path / "m.prom")]) == 2


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        main(["obs", "explode"])


def _write_runtime_profile(path, corrupt=False):
    from repro.obs.runtime import RuntimeReport
    report = RuntimeReport(wall_s=1.5, interval_s=0.002,
                           samples={"sim.events": 8, "other": 2},
                           phases={"fig12": {"wall_s": 1.4,
                                             "count": 1}})
    record = report.to_dict()
    if corrupt:
        record["kind"] = "something-else"
    path.write_text(json.dumps(record))
    return path


def test_summarize_prints_runtime_block_explicit(tmp_path, capsys):
    trace = _write_trace(tmp_path / "t.jsonl")
    profile = _write_runtime_profile(tmp_path / "prof.json")
    assert main(["obs", "summarize", str(trace),
                 "--runtime", str(profile)]) == 0
    out = capsys.readouterr().out
    assert "runtime profile: 1.500 s wall" in out
    assert "sim.events" in out
    assert "80.0% attributed" in out
    assert "fig12" in out


def test_summarize_autodetects_runtime_convention(tmp_path, capsys):
    trace = _write_trace(tmp_path / "t.jsonl")
    _write_runtime_profile(tmp_path / "t.jsonl.runtime.json")
    assert main(["obs", "summarize", str(trace)]) == 0
    assert "runtime profile: 1.500 s wall" in capsys.readouterr().out


def test_summarize_without_runtime_profile_omits_block(tmp_path,
                                                       capsys):
    trace = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "summarize", str(trace)]) == 0
    assert "runtime profile" not in capsys.readouterr().out


def test_summarize_malformed_runtime_profile_errors(tmp_path, capsys):
    trace = _write_trace(tmp_path / "t.jsonl")
    profile = _write_runtime_profile(tmp_path / "prof.json",
                                     corrupt=True)
    assert main(["obs", "summarize", str(trace),
                 "--runtime", str(profile)]) == 1
    captured = capsys.readouterr()
    assert "not a runtime profile" in captured.err
    assert "runtime profile: " not in captured.out


def test_summarize_missing_explicit_runtime_errors(tmp_path, capsys):
    trace = _write_trace(tmp_path / "t.jsonl")
    assert main(["obs", "summarize", str(trace),
                 "--runtime", str(tmp_path / "nope.json")]) == 1
    assert "runtime profile" in capsys.readouterr().err
