"""Trace-analysis unit tests: run splitting, timeline reconstruction,
latency attribution, per-flow reports, audits, cost attribution."""

import math

import pytest

from repro.obs import TraceAnalysis, Tracer, split_runs
from repro.obs.analyze import Episode, default_parent_of, exact_quantile


def _wall_trace():
    """One packet through a WALL-base (token-bucket style) list:
    ineligible from enqueue t=0 until t=3, dequeued at t=5, serialized
    over [5, 6]."""
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "f0", rank=0.0, send_time=3.0, eligible=False)
    tracer.dequeue(5.0, "f0", rank=0.0, send_time=3.0, eligible_at=3.0)
    tracer.departure(5.0, "f0", 1500, packet_id=1, finish=6.0)
    return tracer.events


def test_split_runs_segments_on_marks():
    tracer = Tracer()
    tracer.kick(0.0)
    tracer.mark(1.0, "sweep", target=4.0)
    tracer.kick(0.0)
    tracer.kick(0.5)
    tracer.mark(0.5, "sweep", target=8.0)
    tracer.kick(0.0)
    runs = split_runs(tracer.events)
    assert [run.label for run in runs] == [None, "sweep", "sweep"]
    assert [len(run.events) for run in runs] == [1, 2, 1]
    assert runs[1].fields == {"target": 4.0}
    assert "target=4.0" in runs[1].title


def test_wall_base_attribution_sums_exactly():
    analysis = TraceAnalysis(_wall_trace())
    (timeline,) = analysis.timelines
    assert timeline.delivered
    assert timeline.latency == pytest.approx(6.0)
    assert timeline.eligibility_wait == pytest.approx(3.0)
    assert timeline.serialization == pytest.approx(1.0)
    assert timeline.queueing_wait == pytest.approx(2.0)
    assert timeline.eligibility_exact
    assert (timeline.queueing_wait + timeline.eligibility_wait
            + timeline.serialization) == pytest.approx(timeline.latency)
    assert not analysis.errors


def test_eligible_on_enqueue_has_no_eligibility_wait():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "f0", rank=0.0, send_time=0.0, eligible=True)
    tracer.dequeue(2.0, "f0", rank=0.0, send_time=0.0, eligible_at=0.0)
    tracer.departure(2.0, "f0", 1500, packet_id=1, finish=2.5)
    (timeline,) = TraceAnalysis(tracer.events).timelines
    assert timeline.eligibility_wait == 0.0
    assert timeline.queueing_wait == pytest.approx(2.0)


def test_ancestor_ineligibility_counts_toward_leaf_packets():
    """A token-bucket-limited node ("n0") shapes the leaf packet even
    though the leaf's own element was always eligible."""
    tracer = Tracer()
    tracer.arrival(0.0, "n0.f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "n0.f0", rank=0.0, send_time=0.0, eligible=True)
    tracer.enqueue(0.0, "n0", rank=0.0, send_time=4.0, eligible=False)
    tracer.dequeue(4.0, "n0", rank=0.0, send_time=4.0, eligible_at=4.0)
    tracer.dequeue(4.0, "n0.f0", rank=0.0, send_time=0.0,
                   eligible_at=0.0)
    tracer.departure(4.0, "n0.f0", 1500, packet_id=1, finish=4.5)
    (timeline,) = TraceAnalysis(tracer.events).timelines
    assert timeline.eligibility_wait == pytest.approx(4.0)
    assert timeline.queueing_wait == pytest.approx(0.0)


def test_overlapping_ineligible_intervals_not_double_counted():
    """Leaf ineligible over [0, 3] and its node over [1, 4]: the union
    is 4 seconds, not 7."""
    tracer = Tracer()
    tracer.arrival(0.0, "n0.f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "n0.f0", rank=0.0, send_time=3.0,
                   eligible=False)
    tracer.enqueue(1.0, "n0", rank=0.0, send_time=4.0, eligible=False)
    tracer.dequeue(5.0, "n0", rank=0.0, send_time=4.0, eligible_at=4.0)
    tracer.dequeue(5.0, "n0.f0", rank=0.0, send_time=3.0,
                   eligible_at=3.0)
    tracer.departure(5.0, "n0.f0", 1500, packet_id=1, finish=5.5)
    (timeline,) = TraceAnalysis(tracer.events).timelines
    assert timeline.eligibility_wait == pytest.approx(4.0)
    assert timeline.queueing_wait == pytest.approx(1.0)


def test_virtual_base_attribution_is_conservative_and_flagged():
    """No eligible_at (virtual time base): the whole residence bounds
    the eligibility wait and the packet is flagged inexact."""
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "f0", rank=1.0, send_time=2.0, eligible=False)
    tracer.dequeue(3.0, "f0", rank=1.0, send_time=2.0)
    tracer.departure(3.0, "f0", 1500, packet_id=1, finish=3.5)
    (timeline,) = TraceAnalysis(tracer.events).timelines
    assert not timeline.eligibility_exact
    assert timeline.eligibility_wait == pytest.approx(3.0)
    assert timeline.queueing_wait == pytest.approx(0.0)
    assert (timeline.queueing_wait + timeline.eligibility_wait
            + timeline.serialization) == pytest.approx(timeline.latency)


def test_episode_ineligible_interval_clamps_to_residence():
    episode = Episode(flow_id="f0", enqueue_t=1.0, dequeue_t=5.0,
                      eligible_on_enqueue=False, eligible_at=9.0)
    start, end, exact = episode.ineligible_interval()
    assert (start, end, exact) == (1.0, 5.0, True)
    assert Episode(flow_id="f0", enqueue_t=1.0, dequeue_t=5.0,
                   eligible_on_enqueue=True).ineligible_interval() is None


def test_drop_recorded_on_timeline():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.drop(0.5, "f0", reason="capacity", packet_id=1)
    (timeline,) = TraceAnalysis(tracer.events).timelines
    assert timeline.dropped and not timeline.delivered
    assert timeline.drop_t == 0.5 and timeline.drop_reason == "capacity"


def test_flow_reports_percentiles_and_throughput():
    tracer = Tracer()
    for index, latency in enumerate((1.0, 2.0, 3.0, 4.0)):
        tracer.arrival(float(index * 10), "f0", 1000, packet_id=index)
        tracer.departure(index * 10 + latency - 0.5, "f0", 1000,
                         packet_id=index, finish=index * 10 + latency)
    analysis = TraceAnalysis(tracer.events)
    report = analysis.flows()["f0"]
    assert report.packets == 4
    assert report.p50 == pytest.approx(2.0)
    assert report.p99 == pytest.approx(4.0)
    assert report.mean_latency == pytest.approx(2.5)
    span = analysis.t_max - analysis.t_min
    assert report.throughput_bps == pytest.approx(4 * 1000 * 8 / span)
    assert (report.mean_queueing + report.mean_eligibility
            + report.mean_serialization) == pytest.approx(
                report.mean_latency)


def test_exact_quantile_nearest_rank():
    samples = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert exact_quantile(samples, 0.0) == 1.0
    assert exact_quantile(samples, 0.5) == 3.0
    assert exact_quantile(samples, 1.0) == 5.0
    assert exact_quantile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        exact_quantile(samples, 1.5)


def test_audit_flags_departure_without_arrival():
    tracer = Tracer()
    tracer.departure(1.0, "f0", 1500, packet_id=7, finish=1.5,
                     arrival_t=0.25)
    analysis = TraceAnalysis(tracer.events)
    assert any("without a matching arrival" in issue.message
               for issue in analysis.errors)
    # The stamped arrival_t still allows attribution.
    (timeline,) = analysis.timelines
    assert timeline.latency == pytest.approx(1.25)


def test_audit_flags_conservation_violation():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.departure(1.0, "f0", 1500, packet_id=1, finish=1.5)
    tracer.departure(2.0, "f0", 1500, packet_id=2, finish=2.5)
    analysis = TraceAnalysis(tracer.events)
    assert any("conservation" in issue.message
               for issue in analysis.errors)


def test_audit_flags_fifo_violation():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.arrival(0.1, "f0", 1500, packet_id=2)
    tracer.departure(1.0, "f0", 1500, packet_id=2, finish=1.5)
    tracer.departure(1.5, "f0", 1500, packet_id=1, finish=2.0)
    analysis = TraceAnalysis(tracer.events)
    assert any("FIFO" in issue.message for issue in analysis.errors)


def test_audit_flags_link_overlap():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.arrival(0.0, "f1", 1500, packet_id=2)
    tracer.departure(1.0, "f0", 1500, packet_id=1, finish=2.0)
    tracer.departure(1.5, "f1", 1500, packet_id=2, finish=2.5)
    analysis = TraceAnalysis(tracer.events)
    assert any("serializing" in issue.message
               for issue in analysis.errors)


def test_audit_flags_time_going_backwards():
    events = [{"t": 1.0, "kind": "kick"}, {"t": 0.0, "kind": "kick"}]
    analysis = TraceAnalysis(events)
    assert any("went backwards" in issue.message
               for issue in analysis.errors)


def test_clean_trace_audits_clean():
    analysis = TraceAnalysis(_wall_trace())
    assert analysis.errors == []
    assert not any(issue.severity == "error"
                   for issue in analysis.audit())


def test_starvation_detector():
    tracer = Tracer()
    tracer.arrival(0.0, "f0", 1500, packet_id=1)
    tracer.arrival(0.0, "f1", 1500, packet_id=2)
    tracer.enqueue(0.0, "f0", rank=0.0, send_time=0.0, eligible=True)
    tracer.dequeue(0.1, "f0", rank=0.0, eligible_at=0.0)
    tracer.departure(0.1, "f0", 1500, packet_id=1, finish=0.2)
    # f1 stays backlogged, unserved until t=10.
    tracer.enqueue(0.0, "f1", rank=1.0, send_time=0.0, eligible=True)
    tracer.dequeue(10.0, "f1", rank=1.0, eligible_at=0.0)
    tracer.departure(10.0, "f1", 1500, packet_id=2, finish=10.1)
    analysis = TraceAnalysis(tracer.events)
    starved = analysis.starved_flows(threshold=5.0)
    assert [flow_id for flow_id, _, _ in starved] == ["f1"]
    assert analysis.flows(starvation_threshold=5.0)["f1"].starved
    assert not analysis.flows(starvation_threshold=5.0)["f0"].starved


def test_cost_attribution_is_op_proportional():
    tracer = Tracer()
    for _ in range(3):
        tracer.enqueue(0.0, "f0", rank=0.0, send_time=0.0)
        tracer.dequeue(0.0, "f0", rank=0.0)
    tracer.enqueue(0.0, "f1", rank=0.0, send_time=0.0)
    tracer.dequeue(0.0, "f1", rank=0.0)
    analysis = TraceAnalysis(tracer.events)
    attribution = analysis.cost_attribution({"cycles": 800})
    assert attribution["f0"]["ops"] == 6
    assert attribution["f0"]["cycles"] == pytest.approx(600.0)
    assert attribution["f1"]["cycles"] == pytest.approx(200.0)
    total = sum(share["cycles"] for share in attribution.values())
    assert total == pytest.approx(800.0)


def test_default_parent_of_convention():
    assert default_parent_of("n6.f2") == "n6"
    assert default_parent_of("n6") is None
    assert default_parent_of(42) is None


def test_analysis_accepts_revived_non_finite_fields():
    events = [
        {"t": 0.0, "kind": "arrival", "flow_id": "f0",
         "size_bytes": 1500, "packet_id": 1},
        {"t": 0.0, "kind": "enqueue", "flow_id": "f0", "rank": 0.0,
         "send_time": math.inf, "eligible": False},
        {"t": 1.0, "kind": "dequeue", "flow_id": "f0", "rank": 0.0,
         "send_time": math.inf, "eligible_at": 0.5},
        {"t": 1.0, "kind": "departure", "flow_id": "f0",
         "size_bytes": 1500, "packet_id": 1, "finish": 1.5},
    ]
    (timeline,) = TraceAnalysis(events).timelines
    assert timeline.eligibility_wait == pytest.approx(0.5)


def test_fairness_timeseries_reports_jains_index():
    tracer = Tracer()
    packet_id = 0
    for t in (0.1, 0.2, 0.3, 0.4):
        for flow_id in ("f0", "f1"):
            packet_id += 1
            tracer.arrival(t, flow_id, 1000, packet_id=packet_id)
            tracer.departure(t, flow_id, 1000, packet_id=packet_id,
                             finish=t + 0.01)
    analysis = TraceAnalysis(tracer.events)
    fairness = analysis.fairness_timeseries(0.25)
    assert fairness and all(value == pytest.approx(1.0)
                            for value in fairness)
