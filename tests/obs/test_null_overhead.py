"""Default-path regression: the null observers add no events and no
counter deltas anywhere in the stack.

This guards the observability layer's core claim (mirroring
``NullInstrumentation``): constructing schedulers/engines/simulators
*without* a tracer or metrics registry must leave the shared null
singletons untouched and produce byte-identical scheduling behaviour.
"""

from repro.core.backends import make_list
from repro.core.element import Element
from repro.core.instrumentation import NULL_INSTRUMENTATION
from repro.obs import (NULL_METRICS, NULL_TRACER, MetricsRegistry,
                       NullMetrics, NullTracer, TracedList, Tracer)
from repro.sched import PieoScheduler, WF2Qplus
from repro.sim import (BackloggedSource, FlowQueue, Link, Simulator,
                       TransmitEngine, gbps)


def _run_small_sim(tracer=None, metrics=None):
    sim = Simulator(tracer=tracer)
    link = Link(gbps(10), tracer=tracer)
    scheduler = PieoScheduler(WF2Qplus(), link_rate_bps=link.rate_bps,
                              tracer=tracer, metrics=metrics)
    engine = TransmitEngine(sim, scheduler, link,
                            tracer=tracer, metrics=metrics)
    for index in range(3):
        flow = scheduler.add_flow(FlowQueue(f"f{index}"))
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(0.001)
    return engine


def test_default_components_share_the_null_singletons():
    engine = _run_small_sim()
    assert engine.tracer is NULL_TRACER
    assert engine.metrics is NULL_METRICS
    assert engine.sim.tracer is NULL_TRACER
    assert engine.link.tracer is NULL_TRACER
    assert engine.scheduler.tracer is NULL_TRACER


def test_null_observers_record_nothing_across_a_run():
    engine = _run_small_sim(tracer=NullTracer(), metrics=NullMetrics())
    assert engine.recorder.departures  # the sim actually ran
    assert NULL_TRACER.emitted == 0
    assert NULL_TRACER.counts == {}
    assert list(NULL_TRACER.events) == []
    assert NULL_METRICS.snapshot() == {}
    assert engine.metrics.to_dict() == {}


def test_null_and_real_observers_reach_identical_schedules():
    untraced = _run_small_sim()
    traced = _run_small_sim(tracer=Tracer(), metrics=MetricsRegistry())
    # packet_id is a process-global counter, so compare the schedule
    # itself: departure times, flow order, and sizes must match exactly.
    untraced_departures = [(d.time, d.flow_id, d.size_bytes)
                           for d in untraced.recorder.departures]
    traced_departures = [(d.time, d.flow_id, d.size_bytes)
                         for d in traced.recorder.departures]
    assert untraced_departures == traced_departures
    assert traced.tracer.emitted > 0


def test_traced_list_null_path_is_pure_delegation():
    traced = TracedList(make_list("reference", capacity=8))
    assert traced.tracer is NULL_TRACER
    assert traced.metrics is NULL_METRICS
    assert traced._observed is False
    traced.enqueue(Element("a", rank=1, send_time=0))
    traced.enqueue(Element("b", rank=2, send_time=0))
    assert traced.dequeue(now=0).flow_id == "a"
    assert traced.dequeue_flow("b").flow_id == "b"
    assert NULL_TRACER.emitted == 0
    assert NULL_METRICS.snapshot() == {}


def test_traced_list_observed_path_records_events_and_latency():
    tracer = Tracer()
    registry = MetricsRegistry()
    traced = TracedList(make_list("reference", capacity=8),
                        tracer=tracer, metrics=registry,
                        clock=lambda: 42.0)
    traced.enqueue(Element("a", rank=1, send_time=0))
    assert traced.dequeue(now=0).flow_id == "a"
    assert traced.dequeue(now=0) is None  # miss is traced too
    kinds = [event.kind for event in tracer.events]
    assert kinds == ["enqueue", "dequeue", "dequeue"]
    assert all(event.time == 42.0 for event in tracer.events)
    assert tracer.events[2].get("miss") is True
    snapshot = registry.to_dict()
    assert snapshot["histograms"]["backend.enqueue_us"]["count"] == 1
    assert snapshot["histograms"]["backend.dequeue_us"]["count"] == 2
    assert snapshot["gauges"]["backend.depth"]["max"] == 1


def test_traced_list_delegates_backend_extras():
    traced = TracedList(make_list("hardware", capacity=16))
    traced.enqueue(Element("a", rank=1, send_time=0))
    assert traced.counters.cycles > 0  # __getattr__ passthrough
    traced.check()  # hardware self-check reachable through the wrapper
    assert "a" in traced
    assert len(traced) == 1
    assert traced.capacity == 16


def test_null_instrumentation_alignment():
    """The obs null family and the hardware-model null instrumentation
    make the same promise: zero recorded state on the default path."""
    silent = make_list("hardware", capacity=16, instrument=False)
    silent.enqueue(Element("a", rank=1, send_time=0))
    silent.dequeue(now=0)
    assert silent.counters is NULL_INSTRUMENTATION
    assert silent.counters.snapshot() == {}
