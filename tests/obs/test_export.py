"""Exporter tests: Prometheus text exposition, Perfetto trace JSON."""

import json
import math
from collections import defaultdict

import pytest

from repro.obs import (MetricsRegistry, TraceAnalysis, Tracer,
                       perfetto_trace, prometheus_text, write_perfetto)
from repro.obs.export import prometheus_from_snapshot


def _registry():
    registry = MetricsRegistry()
    registry.counter("engine.arrivals").inc(5)
    registry.gauge("engine.backlog_pkts").set(3)
    histogram = registry.histogram("engine.batch", buckets=(1, 2, 4))
    for value in (1, 2, 3, 100):
        histogram.observe(value)
    log_histogram = registry.log_histogram("sched.latency_us",
                                           min_value=1.0, max_value=1e3)
    for value in (0.5, 10.0, 5000.0):
        log_histogram.observe(value)
    return registry


def _parse_prometheus(text):
    types, samples = {}, {}
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
        elif line:
            name, value = line.rsplit(" ", 1)
            samples[name] = value
    return types, samples


def test_prometheus_round_trips_every_instrument():
    text = prometheus_text(_registry())
    types, samples = _parse_prometheus(text)
    assert types["repro_engine_arrivals_total"] == "counter"
    assert samples["repro_engine_arrivals_total"] == "5"
    assert types["repro_engine_backlog_pkts"] == "gauge"
    assert samples["repro_engine_backlog_pkts"] == "3"
    assert samples["repro_engine_backlog_pkts_min"] == "3"
    assert samples["repro_engine_backlog_pkts_max"] == "3"
    assert types["repro_engine_batch"] == "histogram"
    # Cumulative le buckets, +Inf closing at the total count.
    assert samples['repro_engine_batch_bucket{le="1.0"}'] == "1"
    assert samples['repro_engine_batch_bucket{le="2.0"}'] == "2"
    assert samples['repro_engine_batch_bucket{le="4.0"}'] == "3"
    assert samples['repro_engine_batch_bucket{le="+Inf"}'] == "4"
    assert samples["repro_engine_batch_count"] == "4"
    assert types["repro_sched_latency_us"] == "histogram"
    # LogHistogram: underflow surfaces as the le=min_value bucket.
    assert samples['repro_sched_latency_us_bucket{le="1.0"}'] == "1"
    assert samples['repro_sched_latency_us_bucket{le="+Inf"}'] == "3"
    assert samples["repro_sched_latency_us_count"] == "3"


def test_prometheus_log_histogram_buckets_are_cumulative():
    text = prometheus_text(_registry())
    cumulative = []
    for line in text.splitlines():
        if line.startswith("repro_sched_latency_us_bucket"):
            cumulative.append(int(line.rsplit(" ", 1)[1]))
    assert cumulative == sorted(cumulative)
    assert cumulative[-1] == 3  # +Inf == count


def test_prometheus_sanitizes_names_and_non_finite_values():
    snapshot = {"counters": {"a.b-c/d": 1},
                "gauges": {"g": {"value": math.inf, "min": math.nan,
                                 "max": -math.inf}}}
    text = prometheus_from_snapshot(snapshot)
    assert "repro_a_b_c_d_total 1" in text
    assert "repro_g +Inf" in text
    assert "repro_g_min NaN" in text
    assert "repro_g_max -Inf" in text


def test_prometheus_empty_snapshot_is_empty():
    assert prometheus_from_snapshot({}) == ""


def _traced_analysis():
    tracer = Tracer()
    tracer.arrival(0.0, "n0.f0", 1500, packet_id=1)
    tracer.enqueue(0.0, "n0.f0", rank=0.0, send_time=2.0,
                   eligible=False)
    tracer.kick(0.5)
    tracer.dequeue(3.0, "n0.f0", rank=0.0, send_time=2.0,
                   eligible_at=2.0)
    tracer.departure(3.0, "n0.f0", 1500, packet_id=1, finish=3.5)
    tracer.arrival(1.0, "n0.f1", 1500, packet_id=2)
    tracer.drop(1.5, "n0.f1", reason="capacity", packet_id=2)
    return TraceAnalysis(tracer.events)


def test_perfetto_trace_structure():
    trace = perfetto_trace(_traced_analysis(), process_name="test-run")
    events = trace["traceEvents"]
    phases = defaultdict(int)
    for event in events:
        phases[event["ph"]] += 1
    # Only complete (X), instant (i), and metadata (M) events, so
    # begin/end are balanced by construction.
    assert set(phases) == {"X", "i", "M"}
    assert phases["X"] == 2   # queued span + tx span
    assert phases["i"] == 2   # drop + kick
    names = {event["name"] for event in events if event["ph"] == "M"}
    assert names == {"process_name", "thread_name",
                     "thread_sort_index"}
    process = next(event for event in events
                   if event["name"] == "process_name")
    assert process["args"]["name"] == "test-run"


def test_perfetto_timestamps_monotonic_per_track():
    trace = perfetto_trace(_traced_analysis())
    last = defaultdict(lambda: -1.0)
    for event in trace["traceEvents"]:
        if event["ph"] == "M":
            continue
        assert event["ts"] >= last[event["tid"]]
        assert event["ts"] >= 0
        last[event["tid"]] = event["ts"]


def test_perfetto_span_args_carry_attribution():
    trace = perfetto_trace(_traced_analysis())
    queued = next(event for event in trace["traceEvents"]
                  if event["name"] == "queued")
    assert queued["dur"] == pytest.approx(3.0 * 1e6)
    assert queued["args"]["eligible_on_enqueue"] is False
    assert queued["args"]["eligible_at_us"] == pytest.approx(2.0 * 1e6)
    tx = next(event for event in trace["traceEvents"]
              if event["name"].startswith("tx pkt"))
    assert tx["args"]["latency_us"] == pytest.approx(3.5 * 1e6)
    assert tx["args"]["eligibility_us"] == pytest.approx(2.0 * 1e6)


def test_write_perfetto_is_valid_json(tmp_path):
    path = tmp_path / "trace.json"
    count = write_perfetto(path, _traced_analysis())
    assert count == 4
    loaded = json.loads(path.read_text())
    assert loaded["displayTimeUnit"] == "ms"
    assert len(loaded["traceEvents"]) > count  # metadata on top
