"""Shared fixtures for the PIEO reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.backends import available_backends, make_factory

#: Per-backend config for the conformance matrix.  The hardware model
#: runs with its structural self-checks on so every interface-level test
#: doubles as an invariant test.
_FIXTURE_CONFIG = {"hardware": {"self_check": True}}

_FACTORIES = [(name, make_factory(name, **_FIXTURE_CONFIG.get(name, {})))
              for name in available_backends()]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(params=[factory for _, factory in _FACTORIES],
                ids=[name for name, _ in _FACTORIES])
def pieo_factory(request):
    """Every registered PIEO-semantics backend, for interface-level
    tests — the conformance matrix follows the registry, so extension
    backends registered at import time are covered automatically.

    The P-heap is included because its *semantics* match PIEO exactly —
    only its Extract-Out cost differs (Section 7)."""
    return request.param
