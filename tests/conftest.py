"""Shared fixtures for the PIEO reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.baselines.pheap import PHeap
from repro.core.pieo import PieoHardwareList
from repro.core.pifo import PifoDesignPieoList
from repro.core.reference import ReferencePieo


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def _reference(capacity):
    return ReferencePieo(capacity)


def _hardware(capacity):
    return PieoHardwareList(capacity, self_check=True)


def _pifo_design(capacity):
    return PifoDesignPieoList(capacity)


def _pheap(capacity):
    return PHeap(capacity)


@pytest.fixture(params=[_reference, _hardware, _pifo_design, _pheap],
                ids=["reference", "hardware", "pifo-design", "p-heap"])
def pieo_factory(request):
    """Every PIEO-semantics implementation, for interface-level tests.

    The P-heap is included because its *semantics* match PIEO exactly —
    only its Extract-Out cost differs (Section 7)."""
    return request.param
