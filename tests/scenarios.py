"""Shared scenario builders for the test suite.

One home for the simulation harnesses the suite kept re-growing in
place: the flat backlogged-source rig (``FlatRun``, formerly
``tests/sched/helpers.py``), the mixed Poisson workload
(``run_workload``, formerly private to the integration properties),
and thin wrappers over :mod:`repro.conformance.scenarios` so
conformance-style workloads are available to any test without copying
arrival-generation code.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.conformance.runner import ConformanceRun, run_scenario
from repro.conformance.scenarios import Scenario, make_scenario
from repro.sched.framework import PieoScheduler
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.generators import BackloggedSource, PoissonGenerator
from repro.sim.link import Link, gbps
from repro.sim.packet import MTU_BYTES


class FlatRun:
    """A flat scheduler + engine + backlogged sources, ready to run."""

    def __init__(self, algorithm, link_gbps: float = 10.0,
                 ordered_list=None, trigger=None) -> None:
        self.sim = Simulator()
        self.link = Link(gbps(link_gbps))
        kwargs = {"link_rate_bps": self.link.rate_bps}
        if ordered_list is not None:
            kwargs["ordered_list"] = ordered_list
        if trigger is not None:
            kwargs["trigger"] = trigger
        self.scheduler = PieoScheduler(algorithm, **kwargs)
        self.engine = TransmitEngine(self.sim, self.scheduler, self.link)
        self.sources: Dict[str, BackloggedSource] = {}

    def add_backlogged_flow(self, flow: FlowQueue, depth: int = 2,
                            size_bytes: int = MTU_BYTES,
                            start: float = 0.0,
                            end_time: float = float("inf")) -> FlowQueue:
        self.scheduler.add_flow(flow)
        source = BackloggedSource(self.sim, flow.flow_id,
                                  self.engine.arrival_sink, depth=depth,
                                  size_bytes=size_bytes, end_time=end_time)
        self.engine.add_departure_listener(flow.flow_id,
                                           source.on_departure)
        source.start(start)
        self.sources[flow.flow_id] = source
        return flow

    def run(self, duration: float) -> "FlatRun":
        self.sim.run_until(duration)
        return self

    def rates(self, start: float, end: Optional[float] = None,
              in_gbps: bool = False) -> Dict:
        measured = self.engine.recorder.rate_bps(start=start, end=end)
        if in_gbps:
            return {key: value / 1e9 for key, value in measured.items()}
        return measured


def run_workload(algorithm_factory, list_factory=None, duration=0.01,
                 seed=21):
    """Six mixed-size Poisson flows on a 5 Gbps link (the integration
    properties' workload).  Returns ``(sim, scheduler, engine)``."""
    sim = Simulator()
    link = Link(gbps(5))
    ordered_list = list_factory() if list_factory else None
    scheduler = PieoScheduler(algorithm_factory(),
                              ordered_list=ordered_list,
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    rng = random.Random(seed)
    for index in range(6):
        flow = FlowQueue(f"f{index}", weight=1 + index % 3,
                         rate_bps=gbps(0.2 + 0.2 * index),
                         priority=index % 4)
        scheduler.add_flow(flow)
        PoissonGenerator(sim, flow.flow_id, engine.arrival_sink,
                         rate_bps=gbps(0.5),
                         size_bytes=rng.choice([300, 700, 1500]),
                         rng=random.Random(seed * 31 + index),
                         end_time=duration * 0.8).start(0.0)
    sim.run_until(duration)
    return sim, scheduler, engine


def conformance_scenario(name: str, seed: int = 0,
                         **kwargs) -> Scenario:
    """A registered conformance scenario (pure-data workload)."""
    return make_scenario(name, seed=seed, **kwargs)


def conformance_run(algorithm_name: str, scenario_name: str = None,
                    seed: int = 0, **kwargs) -> ConformanceRun:
    """Run one algorithm against a conformance scenario and return the
    traced, analyzed run (``kwargs`` pass through to
    :func:`repro.conformance.runner.run_scenario`)."""
    from repro.sched.registry import get_spec
    name = scenario_name or get_spec(algorithm_name).scenario
    scenario = make_scenario(name, seed=seed)
    return run_scenario(scenario, algorithm_name, **kwargs)
