"""Unit tests for the Element type."""

import math

import pytest

from repro.core.element import (ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, Element)


def test_defaults_are_always_eligible():
    element = Element(flow_id="f", rank=3)
    assert element.send_time == ALWAYS_ELIGIBLE
    assert element.is_eligible(now=0)
    assert element.is_eligible(now=1e12)


def test_never_eligible_encoding():
    element = Element(flow_id="f", rank=3, send_time=NEVER_ELIGIBLE)
    assert not element.is_eligible(now=0)
    assert not element.is_eligible(now=1e30)


def test_eligibility_threshold_is_inclusive():
    element = Element(flow_id="f", rank=1, send_time=10)
    assert not element.is_eligible(now=9.999)
    assert element.is_eligible(now=10)
    assert element.is_eligible(now=10.001)


def test_group_range_filtering():
    element = Element(flow_id="f", rank=1, group=5)
    assert element.is_eligible(now=0, group_range=(5, 5))
    assert element.is_eligible(now=0, group_range=(0, 9))
    assert not element.is_eligible(now=0, group_range=(6, 9))
    assert not element.is_eligible(now=0, group_range=(0, 4))


def test_group_range_and_time_must_both_hold():
    element = Element(flow_id="f", rank=1, send_time=10, group=2)
    assert not element.is_eligible(now=5, group_range=(2, 2))
    assert not element.is_eligible(now=15, group_range=(3, 4))
    assert element.is_eligible(now=15, group_range=(2, 2))


def test_sort_key_orders_by_rank_then_arrival():
    early = Element(flow_id="a", rank=5)
    early.seq = 1
    late = Element(flow_id="b", rank=5)
    late.seq = 2
    smaller = Element(flow_id="c", rank=4)
    smaller.seq = 3
    assert smaller.sort_key() < early.sort_key() < late.sort_key()


def test_nan_rank_rejected():
    with pytest.raises(ValueError):
        Element(flow_id="f", rank=math.nan)


def test_nan_send_time_rejected():
    with pytest.raises(ValueError):
        Element(flow_id="f", rank=1, send_time=math.nan)


def test_copy_is_independent_but_shares_payload():
    payload = {"k": 1}
    element = Element(flow_id="f", rank=2, send_time=3, group=4,
                      payload=payload)
    element.seq = 9
    clone = element.copy()
    assert clone == element
    assert clone.seq == 9
    assert clone.payload is payload
    clone.rank = 99
    assert element.rank == 2


def test_float_and_int_ranks_compare():
    assert Element("a", rank=1.5).rank < Element("b", rank=2).rank
