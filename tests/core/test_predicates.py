"""Unit tests for predicate encodings."""

import math

import pytest

from repro.core.predicates import (AlwaysFalse, AlwaysTrue,
                                   GroupRangePredicate, TimePredicate,
                                   encode_send_time, is_never)


def test_time_predicate_threshold():
    predicate = TimePredicate(send_time=42)
    assert not predicate(41.9)
    assert predicate(42)
    assert predicate(100)
    assert predicate.encode() == 42


def test_always_true_encodes_to_zero():
    assert AlwaysTrue().encode() == 0
    assert AlwaysTrue()(0)


def test_always_false_encodes_to_infinity():
    predicate = AlwaysFalse()
    assert math.isinf(predicate.encode())
    assert not predicate(1e30)


def test_group_range_predicate():
    predicate = GroupRangePredicate(2, 5)
    assert not predicate(1)
    assert predicate(2)
    assert predicate(5)
    assert not predicate(6)
    assert predicate.as_tuple() == (2, 5)


def test_empty_group_range_rejected():
    with pytest.raises(ValueError):
        GroupRangePredicate(5, 2)


def test_encode_send_time_none_means_always():
    assert encode_send_time(None) == 0
    assert encode_send_time(TimePredicate(7)) == 7


def test_is_never():
    assert is_never(math.inf)
    assert not is_never(0)
    assert not is_never(1e18)
    assert not is_never(-math.inf)
