"""Stateful lockstep test: every backend vs. the reference oracle.

Hypothesis drives random interleavings of the PIEO primitives
(``enqueue`` / ``dequeue`` / ``dequeue(f)`` / grouped dequeue) against
each registered backend and the :mod:`repro.core.reference` oracle in
lockstep.  After every rule the two structures must agree on length,
``min_send_time``, and the full (rank, seq)-ordered resident sequence —
so any divergence is caught at the step that introduced it, with
Hypothesis shrinking the interleaving to a minimal reproduction.

Rank and time values are drawn from deliberately tiny ranges so that
duplicate ranks (FIFO tie-break order) and remove-then-dequeue
sequences occur in nearly every run.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule, run_state_machine_as_test)

from repro.core.backends import available_backends, make_list
from repro.core.element import Element
from repro.core.reference import ReferencePieo
from repro.errors import CapacityError, DuplicateFlowError

CAPACITY = 16
FLOW_IDS = [f"f{i}" for i in range(CAPACITY + 4)]
RANKS = st.integers(min_value=0, max_value=5)       # tiny → lots of ties
SEND_TIMES = st.sampled_from([0, 1, 2, 5, 10])
NOWS = st.sampled_from([0, 1, 2, 5, 10, 100])
GROUPS = st.integers(min_value=0, max_value=3)


class BackendLockstep(RuleBasedStateMachine):
    """Drive one backend and the reference oracle in lockstep."""

    backend_name = "reference"  # overridden per generated subclass

    def __init__(self):
        super().__init__()
        self.model = ReferencePieo(capacity=CAPACITY)
        self.impl = make_list(self.backend_name, capacity=CAPACITY)
        self.resident = set()

    def _elements(self, flow_id, rank, send_time, group):
        """Separate-but-equal Element instances: the lists mutate
        ``seq`` at enqueue time, so the pair must not share one."""
        return (Element(flow_id, rank=rank, send_time=send_time,
                        group=group),
                Element(flow_id, rank=rank, send_time=send_time,
                        group=group))

    @rule(flow_id=st.sampled_from(FLOW_IDS), rank=RANKS,
          send_time=SEND_TIMES, group=GROUPS)
    def enqueue(self, flow_id, rank, send_time, group):
        for_model, for_impl = self._elements(flow_id, rank, send_time,
                                             group)
        if flow_id in self.resident or len(self.resident) >= CAPACITY:
            # Which error wins when the list is BOTH full and holds a
            # duplicate is not part of the contract — backends check in
            # different orders — so accept either; what matters is that
            # both structures reject and stay unchanged.
            if flow_id in self.resident and len(self.resident) >= CAPACITY:
                expected_errors = (DuplicateFlowError, CapacityError)
            elif flow_id in self.resident:
                expected_errors = (DuplicateFlowError,)
            else:
                expected_errors = (CapacityError,)
            with pytest.raises(expected_errors):
                self.model.enqueue(for_model)
            with pytest.raises(expected_errors):
                self.impl.enqueue(for_impl)
        else:
            self.model.enqueue(for_model)
            self.impl.enqueue(for_impl)
            self.resident.add(flow_id)

    @rule(now=NOWS)
    def dequeue(self, now):
        expected = self.model.dequeue(now)
        actual = self.impl.dequeue(now)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.flow_id == expected.flow_id
            assert actual.rank == expected.rank
            assert actual.send_time == expected.send_time
            self.resident.discard(expected.flow_id)

    @rule(now=NOWS, lo=GROUPS, hi=GROUPS)
    def dequeue_grouped(self, now, lo, hi):
        group_range = (min(lo, hi), max(lo, hi))
        expected = self.model.dequeue(now, group_range=group_range)
        actual = self.impl.dequeue(now, group_range=group_range)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.flow_id == expected.flow_id
            assert actual.rank == expected.rank
            self.resident.discard(expected.flow_id)

    @rule(flow_id=st.sampled_from(FLOW_IDS))
    def dequeue_flow(self, flow_id):
        """dequeue(f) on present and absent ids alike — the absent case
        must return the paper's NULL (None) from both structures."""
        expected = self.model.dequeue_flow(flow_id)
        actual = self.impl.dequeue_flow(flow_id)
        if expected is None:
            assert actual is None
        else:
            assert actual is not None
            assert actual.flow_id == expected.flow_id == flow_id
            assert actual.rank == expected.rank
            self.resident.discard(flow_id)

    @precondition(lambda self: self.resident)
    @rule(now=NOWS)
    def remove_then_dequeue(self, now):
        """Explicit remove-then-dequeue: take out some resident flow by
        id, then immediately dequeue — order must survive the removal."""
        victim = sorted(self.resident)[0]
        assert self.model.dequeue_flow(victim) is not None
        assert self.impl.dequeue_flow(victim) is not None
        self.resident.discard(victim)
        self.dequeue(now)

    @invariant()
    def lengths_agree(self):
        assert len(self.impl) == len(self.model) == len(self.resident)

    @invariant()
    def min_send_time_agrees(self):
        assert self.impl.min_send_time() == self.model.min_send_time()

    @invariant()
    def order_agrees(self):
        """The full resident sequence in (rank, FIFO-seq) order must
        match — this is the strongest check and subsumes peek."""
        expected = [(e.flow_id, e.rank, e.send_time)
                    for e in self.model.snapshot()]
        actual = [(e.flow_id, e.rank, e.send_time)
                  for e in self.impl.snapshot()]
        assert actual == expected


@pytest.mark.parametrize("backend", available_backends())
def test_backend_matches_oracle_statefully(backend):
    machine_class = type(f"Lockstep_{backend}", (BackendLockstep,),
                         {"backend_name": backend})
    run_state_machine_as_test(
        machine_class,
        settings=settings(max_examples=25, stateful_step_count=40,
                          deadline=None))
