"""Hardware-model-specific tests: cycle accounting, SRAM port usage,
sublist mechanics, and the Fig. 6 / Fig. 7 worked-example behaviours."""

import math

import pytest

from repro.core.element import Element
from repro.core.pieo import (CYCLES_PER_OP, PieoHardwareList,
                             default_sublist_size)
from repro.errors import InvariantViolation


def fill(pieo, count, rank_of=lambda i: i, send_of=lambda i: 0):
    for index in range(count):
        pieo.enqueue(Element(index, rank=rank_of(index),
                             send_time=send_of(index)))


# ---------------------------------------------------------------------
# Geometry
# ---------------------------------------------------------------------
def test_default_sublist_size_is_ceil_sqrt():
    assert default_sublist_size(16) == 4
    assert default_sublist_size(17) == 5
    assert default_sublist_size(1024) == 32
    assert default_sublist_size(1) == 1
    assert default_sublist_size(30000) == 174


def test_number_of_sublists_is_twice_ceil_n_over_s():
    pieo = PieoHardwareList(16)
    assert pieo.sublist_size == 4
    assert pieo.num_sublists == 8
    pieo = PieoHardwareList(30000)
    assert pieo.num_sublists == 2 * math.ceil(30000 / 174)


def test_custom_sublist_size():
    pieo = PieoHardwareList(64, sublist_size=8)
    assert pieo.num_sublists == 16
    fill(pieo, 64)
    assert len(pieo) == 64


# ---------------------------------------------------------------------
# Cycle accounting (Section 5.2: every primitive op takes 4 cycles)
# ---------------------------------------------------------------------
def test_enqueue_charges_four_cycles():
    pieo = PieoHardwareList(16)
    pieo.enqueue(Element("a", rank=1))
    assert pieo.counters.cycles == CYCLES_PER_OP
    assert pieo.counters.ops == {"enqueue": 1}


def test_dequeue_charges_four_cycles():
    pieo = PieoHardwareList(16)
    pieo.enqueue(Element("a", rank=1))
    pieo.counters.reset()
    pieo.dequeue(now=0)
    assert pieo.counters.cycles == CYCLES_PER_OP
    assert pieo.counters.ops == {"dequeue": 1}


def test_dequeue_flow_charges_four_cycles():
    pieo = PieoHardwareList(16)
    pieo.enqueue(Element("a", rank=1))
    pieo.counters.reset()
    pieo.dequeue_flow("a")
    assert pieo.counters.cycles == CYCLES_PER_OP
    assert pieo.counters.ops == {"dequeue_flow": 1}


def test_null_dequeue_is_cheap():
    pieo = PieoHardwareList(16)
    pieo.dequeue(now=0)
    pieo.dequeue_flow("ghost")
    assert pieo.counters.ops == {"dequeue_null": 1, "dequeue_flow_null": 1}
    assert pieo.counters.cycles == 2


def test_mixed_traffic_averages_four_cycles(rng):
    pieo = PieoHardwareList(256)
    operations = 0
    for step in range(2000):
        if len(pieo) < 256 and (not len(pieo) or rng.random() < 0.5):
            pieo.enqueue(Element(f"f{step}", rank=rng.randint(0, 100)))
            operations += 1
        else:
            if pieo.dequeue(now=1) is not None:
                operations += 1
    nulls = pieo.counters.ops.get("dequeue_null", 0)
    assert pieo.counters.cycles == operations * CYCLES_PER_OP + nulls


# ---------------------------------------------------------------------
# SRAM port usage: at most two sublists touched per op (dual-port SRAM)
# ---------------------------------------------------------------------
def test_enqueue_reads_at_most_two_sublists(rng):
    pieo = PieoHardwareList(64, self_check=True)
    for index in range(64):
        pieo.enqueue(Element(index, rank=rng.randint(0, 50)))
        assert len(pieo.last_trace.sublists_read) <= 2
        assert len(pieo.last_trace.sublists_written) <= 2
        assert set(pieo.last_trace.sublists_written) == set(
            pieo.last_trace.sublists_read)


def test_dequeue_reads_at_most_two_sublists(rng):
    pieo = PieoHardwareList(64, self_check=True)
    for index in range(64):
        pieo.enqueue(Element(index, rank=rng.randint(0, 50)))
    while len(pieo):
        pieo.dequeue(now=0)
        assert len(pieo.last_trace.sublists_read) <= 2


# ---------------------------------------------------------------------
# Fig. 6 worked-example behaviours (enqueue)
# ---------------------------------------------------------------------
def test_enqueue_into_empty_list_uses_fresh_sublist():
    pieo = PieoHardwareList(16, self_check=True)
    pieo.enqueue(Element("a", rank=5))
    assert pieo.last_trace.used_fresh_sublist
    assert pieo.pointer_array.num_nonempty == 1


def test_enqueue_selects_sublist_by_rank_comparison():
    """Cycle 1: parallel compare smallest_rank > f.rank, select j-1."""
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 8, rank_of=lambda i: i * 10)   # two full sublists
    first = pieo.pointer_array.entries[0].sublist_id
    pieo.enqueue(Element("mid", rank=15))
    # rank 15 belongs in the first sublist (ranks 0,10,20,30).
    assert pieo.last_trace.selected_sublist == first


def test_enqueue_full_sublist_spills_tail_to_right_neighbor():
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 5, rank_of=lambda i: i * 10)   # sublist0 full, sublist1 has 1
    trace_before = [entry.num for entry in
                    pieo.pointer_array.nonempty_entries()]
    assert trace_before == [4, 1]
    pieo.enqueue(Element("early", rank=5))
    trace = pieo.last_trace
    assert trace.neighbor_sublist is not None
    assert not trace.used_fresh_sublist
    assert trace.moved_flow == 3  # rank 30, the old tail of sublist 0
    snapshot = [element.rank for element in pieo.snapshot()]
    assert snapshot == sorted(snapshot)


def test_enqueue_full_sublists_inserts_fresh_between():
    """Fig. 6: both S and its right neighbour full -> a fresh empty
    sublist is shifted to the immediate right of S."""
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 8, rank_of=lambda i: i * 10)   # two full sublists
    assert [entry.num for entry in
            pieo.pointer_array.nonempty_entries()] == [4, 4]
    pieo.enqueue(Element("wedge", rank=15))
    trace = pieo.last_trace
    assert trace.used_fresh_sublist
    nonempty = pieo.pointer_array.nonempty_entries()
    assert [entry.num for entry in nonempty] == [4, 1, 4]
    assert nonempty[1].sublist_id == trace.neighbor_sublist
    ranks = [element.rank for element in pieo.snapshot()]
    assert ranks == sorted(ranks)


def test_enqueue_rank_larger_than_everything_goes_to_tail():
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 6, rank_of=lambda i: i)
    pieo.enqueue(Element("tail", rank=999))
    assert pieo.snapshot()[-1].flow_id == "tail"


def test_enqueue_rank_smaller_than_everything_goes_to_head():
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 6, rank_of=lambda i: i + 10)
    pieo.enqueue(Element("head", rank=-1))
    assert pieo.snapshot()[0].flow_id == "head"


# ---------------------------------------------------------------------
# Fig. 7 worked-example behaviours (dequeue)
# ---------------------------------------------------------------------
def test_dequeue_selects_first_sublist_with_eligible_summary():
    pieo = PieoHardwareList(16, self_check=True)
    # Sublist 0 ranks 0..3 all ineligible; sublist 1 ranks 40.. eligible.
    fill(pieo, 4, rank_of=lambda i: i, send_of=lambda i: 100)
    for index in range(4, 8):
        pieo.enqueue(Element(index, rank=index * 10, send_time=0))
    served = pieo.dequeue(now=6)
    assert served.flow_id == 4
    assert pieo.last_trace.selected_sublist is not None


def test_dequeue_from_full_sublist_steals_from_neighbor():
    """Fig. 7 cycle 2-3: a full S borrows an element from a non-full
    neighbour so Invariant 1 survives."""
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 5, rank_of=lambda i: i * 10)   # [4 full, 1 partial]
    served = pieo.dequeue(now=0)
    assert served.flow_id == 0
    trace = pieo.last_trace
    assert trace.moved_flow == 4   # head of the right neighbour moved in
    assert [entry.num for entry in
            pieo.pointer_array.nonempty_entries()] == [4]


def test_dequeue_emptied_sublist_parks_in_empty_partition():
    pieo = PieoHardwareList(16, self_check=True)
    pieo.enqueue(Element("only", rank=1))
    assert pieo.pointer_array.num_nonempty == 1
    pieo.dequeue(now=0)
    assert pieo.pointer_array.num_nonempty == 0
    assert len(pieo) == 0


def test_dequeue_without_nonfull_neighbor_leaves_partial():
    pieo = PieoHardwareList(16, self_check=True)
    fill(pieo, 8, rank_of=lambda i: i)   # two full sublists
    pieo.dequeue(now=0)
    nums = [entry.num for entry in pieo.pointer_array.nonempty_entries()]
    assert nums == [3, 4]


# ---------------------------------------------------------------------
# Invariants & diagnostics
# ---------------------------------------------------------------------
def test_check_detects_corruption():
    pieo = PieoHardwareList(16)
    fill(pieo, 8, rank_of=lambda i: i)
    # Corrupt the pointer array deliberately.
    pieo.pointer_array.entries[0].num += 1
    with pytest.raises(InvariantViolation):
        pieo.check()


def test_flow_map_tracks_migrations(rng):
    pieo = PieoHardwareList(64, self_check=True)
    for index in range(64):
        pieo.enqueue(Element(index, rank=rng.randint(0, 30)))
    # dequeue(f) must find every flow even after spills/steals moved it.
    for index in rng.sample(range(64), 20):
        assert pieo.dequeue_flow(index).flow_id == index


def test_capacity_one_list():
    pieo = PieoHardwareList(1, self_check=True)
    pieo.enqueue(Element("a", rank=1))
    assert pieo.dequeue(now=0).flow_id == "a"
    pieo.enqueue(Element("b", rank=1))
    assert pieo.dequeue_flow("b").flow_id == "b"
