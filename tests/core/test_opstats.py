"""Tests for the operation counters."""

from repro.core.opstats import OpCounters


def test_charge_op_accumulates():
    counters = OpCounters()
    counters.charge_op("enqueue", 4)
    counters.charge_op("enqueue", 4)
    counters.charge_op("dequeue", 5)
    assert counters.cycles == 13
    assert counters.ops == {"enqueue": 2, "dequeue": 1}
    assert counters.total_ops() == 3


def test_charges_by_kind():
    counters = OpCounters()
    counters.charge_compare(16)
    counters.charge_compare(4)
    counters.charge_encode()
    counters.charge_sram_read(2)
    counters.charge_sram_write()
    assert counters.comparator_activations == 20
    assert counters.encoder_activations == 1
    assert counters.sram_sublist_reads == 2
    assert counters.sram_sublist_writes == 1


def test_reset():
    counters = OpCounters()
    counters.charge_op("x", 4)
    counters.charge_compare(3)
    counters.reset()
    assert counters.cycles == 0
    assert counters.total_ops() == 0
    assert counters.comparator_activations == 0


def test_snapshot_contains_ops():
    counters = OpCounters()
    counters.charge_op("enqueue", 4)
    view = counters.snapshot()
    assert view["cycles"] == 4
    assert view["op:enqueue"] == 1
    assert view["total_ops"] == 1
