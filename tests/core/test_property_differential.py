"""Property-based differential testing: the cycle-accurate hardware model
must be observationally equivalent to the reference oracle under any
operation sequence, while maintaining every structural invariant
(including Invariant 1) after every operation."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.element import Element
from repro.core.fastlist import FastPieo
from repro.core.pieo import PieoHardwareList
from repro.core.pifo import PifoDesignPieoList
from repro.core.reference import ReferencePieo

CAPACITY = 24

# One abstract operation: (kind, rank, send_time, now, group, target)
operation = st.tuples(
    st.sampled_from(["enqueue", "dequeue", "dequeue_flow",
                     "dequeue_grouped"]),
    st.integers(min_value=0, max_value=15),            # rank
    st.sampled_from([0, 3, 7, 12, 25, float("inf")]),  # send_time
    st.integers(min_value=0, max_value=30),            # now
    st.integers(min_value=0, max_value=2),             # group
    st.integers(min_value=0, max_value=40),            # dequeue_flow target
)


def apply_ops(ops, implementations):
    """Run the op sequence on every implementation; assert agreement."""
    next_flow = 0
    for kind, rank, send_time, now, group, target in ops:
        if kind == "enqueue":
            if len(implementations[0]) >= CAPACITY:
                continue
            for impl in implementations:
                impl.enqueue(Element(next_flow, rank=rank,
                                     send_time=send_time, group=group))
            next_flow += 1
        elif kind == "dequeue":
            results = [impl.dequeue(now) for impl in implementations]
            _assert_same(results)
        elif kind == "dequeue_grouped":
            results = [impl.dequeue(now, group_range=(0, group))
                       for impl in implementations]
            _assert_same(results)
        else:
            results = [impl.dequeue_flow(target % (next_flow + 1))
                       for impl in implementations]
            _assert_same(results)
        snapshots = [[e.flow_id for e in impl.snapshot()]
                     for impl in implementations]
        assert all(snapshot == snapshots[0] for snapshot in snapshots)
        assert all(impl.min_send_time() == implementations[0].min_send_time()
                   for impl in implementations)


def _assert_same(results):
    ids = [(result.flow_id if result is not None else None)
           for result in results]
    assert all(one == ids[0] for one in ids), ids


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, max_size=120))
def test_hardware_matches_reference(ops):
    apply_ops(ops, [ReferencePieo(CAPACITY),
                    PieoHardwareList(CAPACITY, self_check=True)])


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, max_size=120),
       st.integers(min_value=2, max_value=6))
def test_fast_engine_matches_reference(ops, chunk_size):
    """The index-accelerated engine under constant chunk churn (tiny
    chunk sizes force splits) must match the oracle exactly."""
    apply_ops(ops, [ReferencePieo(CAPACITY),
                    FastPieo(CAPACITY, chunk_size=chunk_size)])


@settings(max_examples=75, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, max_size=80))
def test_pifo_design_variant_matches_reference(ops):
    apply_ops(ops, [ReferencePieo(CAPACITY),
                    PifoDesignPieoList(CAPACITY)])


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(operation, max_size=80),
       st.integers(min_value=1, max_value=9))
def test_hardware_invariants_hold_for_any_sublist_size(ops, sublist_size):
    """Invariant 1 and friends must hold even for non-sqrt sublist sizes
    (the ablation configurations)."""
    hardware = PieoHardwareList(CAPACITY, sublist_size=sublist_size,
                                self_check=True)
    apply_ops(ops, [ReferencePieo(CAPACITY), hardware])


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)),
                min_size=1, max_size=CAPACITY))
def test_snapshot_always_sorted(pairs):
    """Global-Ordered-List property: snapshot is sorted by (rank, seq)."""
    hardware = PieoHardwareList(CAPACITY, self_check=True)
    for index, (rank, send_time) in enumerate(pairs):
        hardware.enqueue(Element(index, rank=rank, send_time=send_time))
    snapshot = hardware.snapshot()
    keys = [element.sort_key() for element in snapshot]
    assert keys == sorted(keys)
    ranks = [element.rank for element in snapshot]
    assert ranks == sorted(ranks)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=CAPACITY))
def test_equal_ranks_drain_fifo(ranks):
    """Section 3.1 tie-break: equal ranks dequeue in enqueue order."""
    hardware = PieoHardwareList(CAPACITY, self_check=True)
    for index, rank in enumerate(ranks):
        hardware.enqueue(Element(index, rank=rank))
    served = []
    while len(hardware):
        served.append(hardware.dequeue(now=0))
    expected = sorted(range(len(ranks)), key=lambda i: (ranks[i], i))
    assert [element.flow_id for element in served] == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=CAPACITY),
       st.integers(0, 30))
def test_dequeue_never_returns_ineligible(send_times, now):
    hardware = PieoHardwareList(CAPACITY, self_check=True)
    for index, send_time in enumerate(send_times):
        hardware.enqueue(Element(index, rank=index, send_time=send_time))
    element = hardware.dequeue(now=now)
    eligible = [t for t in send_times if t <= now]
    if eligible:
        assert element is not None
        assert element.send_time <= now
        # Smallest rank among eligible == smallest index enqueued with
        # send_time <= now (ranks are the enqueue indices here).
        expected = min(index for index, t in enumerate(send_times)
                       if t <= now)
        assert element.flow_id == expected
    else:
        assert element is None
