"""The backend registry: lookup, registration, capacity policy, and the
instrumentation split."""

import pytest

from repro.baselines.pheap import PHeap
from repro.core.backends import (DEFAULT_BACKEND, DEFAULT_CAPACITY,
                                 available_backends, get_backend,
                                 make_factory, make_list, register_backend,
                                 unregister_backend)
from repro.core.element import Element
from repro.core.fastlist import FastPieo
from repro.core.instrumentation import (NULL_INSTRUMENTATION,
                                        NullInstrumentation)
from repro.core.opstats import OpCounters
from repro.core.pieo import PieoHardwareList
from repro.core.pifo import PifoDesignPieoList
from repro.core.reference import ReferencePieo
from repro.errors import CapacityError, ConfigurationError


def test_builtin_backends_registered():
    names = available_backends()
    for name in ("reference", "hardware", "fast", "pifo-design", "pheap"):
        assert name in names
    assert DEFAULT_BACKEND == "reference"


def test_make_list_instantiates_expected_classes():
    assert isinstance(make_list("reference"), ReferencePieo)
    assert isinstance(make_list("hardware", capacity=64), PieoHardwareList)
    assert isinstance(make_list("fast"), FastPieo)
    assert isinstance(make_list("pifo-design", capacity=16),
                      PifoDesignPieoList)
    assert isinstance(make_list("pheap", capacity=16), PHeap)


def test_unknown_backend_names_the_alternatives():
    with pytest.raises(ConfigurationError) as excinfo:
        get_backend("bogus")
    message = str(excinfo.value)
    assert "bogus" in message
    assert "reference" in message and "fast" in message


def test_duplicate_registration_rejected_without_overwrite():
    with pytest.raises(ConfigurationError):
        register_backend("reference", lambda capacity: None)


def test_register_overwrite_and_unregister():
    register_backend("ephemeral", lambda capacity: ReferencePieo(capacity),
                     description="v1")
    try:
        assert get_backend("ephemeral").description == "v1"
        register_backend("ephemeral",
                         lambda capacity: ReferencePieo(capacity),
                         description="v2", overwrite=True)
        assert get_backend("ephemeral").description == "v2"
        assert isinstance(make_list("ephemeral", capacity=4), ReferencePieo)
    finally:
        unregister_backend("ephemeral")
    assert "ephemeral" not in available_backends()


def test_bounded_only_backends_get_default_capacity():
    assert make_list("hardware").capacity == DEFAULT_CAPACITY
    assert make_list("pheap").capacity == DEFAULT_CAPACITY


def test_capacity_is_enforced_through_the_registry():
    pieo = make_list("fast", capacity=2)
    pieo.enqueue(Element("a", rank=1))
    pieo.enqueue(Element("b", rank=2))
    with pytest.raises(CapacityError):
        pieo.enqueue(Element("c", rank=3))


def test_backend_config_passes_through():
    hardware = make_list("hardware", capacity=64, sublist_size=4)
    assert hardware.sublist_size == 4
    fast = make_list("fast", chunk_size=8)
    assert fast._chunk_size == 8


def test_hardware_instrument_flag_selects_null_instrumentation():
    charged = make_list("hardware", capacity=16)
    silent = make_list("hardware", capacity=16, instrument=False)
    assert isinstance(charged.counters, OpCounters)
    assert isinstance(silent.counters, NullInstrumentation)
    for pieo in (charged, silent):
        pieo.enqueue(Element("a", rank=1))
        pieo.dequeue(now=0)
    assert charged.counters.cycles > 0
    assert silent.counters.snapshot() == {}
    assert silent.counters is NULL_INSTRUMENTATION


def test_make_factory_builds_fresh_instances():
    factory = make_factory("fast", chunk_size=4)
    first, second = factory(8), factory(8)
    assert first is not second
    first.enqueue(Element("a", rank=1))
    assert len(second) == 0
    assert first.capacity == 8


def test_make_factory_fails_fast_on_unknown_names():
    with pytest.raises(ConfigurationError):
        make_factory("bogus")
