"""Unit tests for the priority-encoder helpers."""

from repro.core.priority_encoder import (first_match, parallel_compare,
                                         priority_encode,
                                         priority_encode_last)


def test_priority_encode_smallest_index():
    assert priority_encode([False, True, True]) == 1
    assert priority_encode([True]) == 0


def test_priority_encode_all_zero_returns_none():
    assert priority_encode([False, False]) is None
    assert priority_encode([]) is None


def test_priority_encode_last():
    assert priority_encode_last([True, False, True, False]) == 2
    assert priority_encode_last([False]) is None


def test_parallel_compare_width():
    bits = parallel_compare([1, 5, 3, 7], lambda value: value > 2)
    assert bits == [False, True, True, True]


def test_first_match_composes():
    assert first_match([10, 20, 30], lambda value: value >= 20) == 1
    assert first_match([10, 20, 30], lambda value: value > 99) is None
