"""Worked examples in the spirit of Figs. 6 and 7: a 16-element PIEO (8
sublists of 4), with the full post-operation state asserted — pointer
array, rank-sublists, and eligibility-sublists.

The published figures' exact constants are not machine-readable in our
paper source, so these scenarios use the same geometry and exercise the
same cases the figures walk through (full-sublist enqueue with a fresh
sublist shifted in; dequeue from a full sublist with a neighbour
donation and pointer-array re-arrangement)."""

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList


def build_two_full_sublists():
    """Sublist A: ranks 10,20,30,40 (send times 5,50,5,50);
    sublist B: ranks 50,60,70,80 (send times 9,9,9,9)."""
    pieo = PieoHardwareList(16, self_check=True)
    send_times = {10: 5, 20: 50, 30: 5, 40: 50,
                  50: 9, 60: 9, 70: 9, 80: 9}
    for rank in (10, 20, 30, 40, 50, 60, 70, 80):
        pieo.enqueue(Element(f"f{rank}", rank=rank,
                             send_time=send_times[rank]))
    return pieo


def nonempty_state(pieo):
    """[(ranks...), (eligibility...)] per non-empty sublist, in pointer
    order."""
    state = []
    for entry in pieo.pointer_array.nonempty_entries():
        sublist = pieo.sublists[entry.sublist_id]
        state.append((
            tuple(element.rank for element in sublist.entries),
            tuple(sublist.eligibility),
        ))
    return state


def pointer_summaries(pieo):
    return [(entry.smallest_rank, entry.smallest_send_time, entry.num)
            for entry in pieo.pointer_array.nonempty_entries()]


def test_initial_state_matches_figure_geometry():
    pieo = build_two_full_sublists()
    assert pieo.sublist_size == 4
    assert pieo.num_sublists == 8
    assert nonempty_state(pieo) == [
        ((10, 20, 30, 40), (5, 5, 50, 50)),
        ((50, 60, 70, 80), (9, 9, 9, 9)),
    ]
    assert pointer_summaries(pieo) == [(10, 5, 4), (50, 9, 4)]


def test_fig6_enqueue_into_full_sublist_with_full_neighbor():
    """Fig. 6's case: the target sublist and its right neighbour are both
    full, so a fresh empty sublist is shifted to the immediate right of
    the target and receives the pushed-out tail."""
    pieo = build_two_full_sublists()
    pieo.enqueue(Element("f13", rank=13, send_time=2))

    trace = pieo.last_trace
    assert trace.used_fresh_sublist
    assert trace.position_in_sublist == 1     # between ranks 10 and 20
    assert trace.moved_flow == "f40"          # old tail spilled right

    assert nonempty_state(pieo) == [
        ((10, 13, 20, 30), (2, 5, 5, 50)),    # new element in place
        ((40,), (50,)),                       # fresh sublist with tail
        ((50, 60, 70, 80), (9, 9, 9, 9)),     # untouched
    ]
    assert pointer_summaries(pieo) == [
        (10, 2, 4), (40, 50, 1), (50, 9, 4)]
    # The moved element remains extractable by dequeue(f).
    assert pieo.dequeue_flow("f40").rank == 40


def test_fig7_dequeue_with_full_neighbors_leaves_partial():
    """Both neighbours of the selected (full) sublist are full or
    absent: "If both left and right sublists are full, we only read S" —
    S simply becomes partially full, which cannot violate Invariant 1."""
    pieo = build_two_full_sublists()
    served = pieo.dequeue(now=6)
    assert served.flow_id == "f10"

    trace = pieo.last_trace
    assert trace.position_in_sublist == 0
    assert trace.moved_flow is None
    assert trace.sublists_read == trace.sublists_written

    assert nonempty_state(pieo) == [
        ((20, 30, 40), (5, 50, 50)),
        ((50, 60, 70, 80), (9, 9, 9, 9)),
    ]
    assert pointer_summaries(pieo) == [(20, 5, 3), (50, 9, 4)]


def test_fig7_dequeue_from_full_sublist_with_partial_neighbor():
    """Fig. 7's donation case: the selected sublist is full and its
    right neighbour is partial, so the neighbour's head moves into S's
    tail, keeping S full (Invariant 1)."""
    pieo = PieoHardwareList(16, self_check=True)
    send_times = {10: 5, 20: 50, 30: 5, 40: 50, 50: 9, 60: 9, 70: 9}
    for rank in (10, 20, 30, 40, 50, 60, 70):
        pieo.enqueue(Element(f"f{rank}", rank=rank,
                             send_time=send_times[rank]))
    assert pointer_summaries(pieo) == [(10, 5, 4), (50, 9, 3)]

    served = pieo.dequeue(now=6)
    assert served.flow_id == "f10"
    trace = pieo.last_trace
    assert trace.moved_flow == "f50"          # donated by the neighbour

    assert nonempty_state(pieo) == [
        ((20, 30, 40, 50), (5, 9, 50, 50)),
        ((60, 70), (9, 9)),
    ]
    assert pointer_summaries(pieo) == [(20, 5, 4), (60, 9, 2)]


def test_fig7_dequeue_skips_ineligible_sublist():
    """At t=5 only elements with send_time <= 5 qualify: ranks 20 and 30
    in sublist A.  Rank 20 is ineligible (send 50), so the dequeue must
    return rank 10 (send 5)... at t=5 rank 10 (send 5) is eligible and
    smallest — but at t=4 *nothing* in sublist A qualifies and sublist B
    (summary 9) does not either: dequeue returns NULL."""
    pieo = build_two_full_sublists()
    assert pieo.dequeue(now=4) is None
    assert pieo.dequeue(now=5).flow_id == "f10"
    # Next eligible at t=5 is rank 30 (send 5); rank 20 waits till 50.
    assert pieo.dequeue(now=5).flow_id == "f30"
    served = pieo.dequeue(now=9)
    assert served.flow_id == "f50"
    assert pieo.dequeue(now=50).flow_id == "f20"


def test_emptied_sublist_rejoins_empty_partition_at_head():
    pieo = PieoHardwareList(16, self_check=True)
    pieo.enqueue(Element("a", rank=1))
    pieo.enqueue(Element("b", rank=99))
    # Force "b" into its own sublist by filling around it is overkill;
    # instead drain and check the pointer partition bookkeeping.
    assert pieo.pointer_array.num_nonempty == 1
    pieo.dequeue(now=0)
    pieo.dequeue(now=0)
    assert pieo.pointer_array.num_nonempty == 0
    assert len(pieo.pointer_array.entries) == 8
    assert sorted(e.sublist_id for e in pieo.pointer_array.entries) == \
        list(range(8))
