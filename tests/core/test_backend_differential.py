"""Seed-logged differential testing across *every* registered backend.

Complements the hypothesis suite (:mod:`tests.core
.test_property_differential`): here the op stream comes from a plain
seeded :class:`random.Random`, the seed is part of the test id and of
every assertion message (so a failure is reproducible by pasting one
number), and the lockstep matrix is built from the backend registry —
an extension backend registered at import time gets differentially
tested against the reference oracle for free.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backends import available_backends, make_list
from repro.core.element import Element

CAPACITY = 32
OPS_PER_SEED = 1_500
SEEDS = [1, 7, 42, 1337, 0xC0FFEE]

#: Per-backend config for the lockstep matrix.  The hardware model's
#: structural self-check is exercised by the hypothesis suite already;
#: here it stays off so five backends x 1500 ops stays quick.
_CONFIG = {"hardware": {"self_check": False}}


def _lockstep_implementations():
    names = list(available_backends())
    # The oracle drives the comparison: put it first.
    names.sort(key=lambda name: name != "reference")
    return names, [make_list(name, capacity=CAPACITY,
                             **_CONFIG.get(name, {})) for name in names]


def _generate_op(rng: random.Random):
    kind = rng.random()
    if kind < 0.45:
        return ("enqueue", rng.randint(0, 20),
                rng.choice([0, 3, 7, 12, 25, float("inf")]),
                rng.randint(0, 3))
    if kind < 0.70:
        return ("dequeue", rng.randint(0, 30))
    if kind < 0.85:
        lo = rng.randint(0, 2)
        return ("dequeue_grouped", rng.randint(0, 30), lo,
                lo + rng.randint(0, 2))
    return ("dequeue_flow", rng.randint(0, 60))


@pytest.mark.parametrize("seed", SEEDS)
def test_all_registered_backends_agree(seed):
    """>= 1000 random ops per seed, every backend in lockstep with the
    reference oracle on results, snapshots and min_send_time."""
    rng = random.Random(seed)
    names, impls = _lockstep_implementations()
    context = f"seed={seed} backends={names}"
    next_flow = 0
    for step in range(OPS_PER_SEED):
        op = _generate_op(rng)
        where = f"{context} step={step} op={op}"
        if op[0] == "enqueue":
            if len(impls[0]) >= CAPACITY:
                continue
            _, rank, send_time, group = op
            for impl in impls:
                impl.enqueue(Element(next_flow, rank=rank,
                                     send_time=send_time, group=group))
            next_flow += 1
            continue
        if op[0] == "dequeue":
            results = [impl.dequeue(op[1]) for impl in impls]
        elif op[0] == "dequeue_grouped":
            _, now, lo, hi = op
            results = [impl.dequeue(now, group_range=(lo, hi))
                       for impl in impls]
        else:
            target = op[1] % (next_flow + 1)
            results = [impl.dequeue_flow(target) for impl in impls]
        ids = [(result.flow_id if result is not None else None)
               for result in results]
        assert all(one == ids[0] for one in ids), f"{where} results={ids}"
        snapshots = [[e.flow_id for e in impl.snapshot()] for impl in impls]
        assert all(s == snapshots[0] for s in snapshots), where
        min_sends = [impl.min_send_time() for impl in impls]
        assert all(m == min_sends[0] for m in min_sends), \
            f"{where} min_send={min_sends}"


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_fast_backend_odd_chunk_sizes_agree(seed):
    """The fast engine's split/merge bookkeeping must be size-agnostic:
    tiny chunks force constant splitting."""
    rng = random.Random(seed)
    reference = make_list("reference", capacity=CAPACITY)
    tiny = make_list("fast", capacity=CAPACITY, chunk_size=2)
    odd = make_list("fast", capacity=CAPACITY, chunk_size=5)
    impls = [reference, tiny, odd]
    next_flow = 0
    for step in range(OPS_PER_SEED):
        op = _generate_op(rng)
        if op[0] == "enqueue":
            if len(reference) >= CAPACITY:
                continue
            _, rank, send_time, group = op
            for impl in impls:
                impl.enqueue(Element(next_flow, rank=rank,
                                     send_time=send_time, group=group))
            next_flow += 1
            continue
        if op[0] == "dequeue":
            results = [impl.dequeue(op[1]) for impl in impls]
        elif op[0] == "dequeue_grouped":
            _, now, lo, hi = op
            results = [impl.dequeue(now, group_range=(lo, hi))
                       for impl in impls]
        else:
            target = op[1] % (next_flow + 1)
            results = [impl.dequeue_flow(target) for impl in impls]
        ids = [(result.flow_id if result is not None else None)
               for result in results]
        assert all(one == ids[0] for one in ids), \
            f"seed={seed} step={step} op={op} results={ids}"
