"""Reference-implementation-specific tests."""

import pytest

from repro.core.element import Element
from repro.core.reference import ReferencePieo
from repro.errors import CapacityError


def test_unbounded_by_default():
    pieo = ReferencePieo()
    for index in range(10_000):
        pieo.enqueue(Element(index, rank=index % 7))
    assert len(pieo) == 10_000


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ReferencePieo(0)
    with pytest.raises(ValueError):
        ReferencePieo(-3)


def test_capacity_error_message_names_limit():
    pieo = ReferencePieo(2)
    pieo.enqueue(Element("a", rank=1))
    pieo.enqueue(Element("b", rank=1))
    with pytest.raises(CapacityError, match="capacity 2"):
        pieo.enqueue(Element("c", rank=1))


def test_seq_numbers_monotonic_across_reenqueues():
    pieo = ReferencePieo()
    pieo.enqueue(Element("a", rank=1))
    first_seq = pieo.snapshot()[0].seq
    pieo.dequeue(now=0)
    pieo.enqueue(Element("a", rank=1))
    assert pieo.snapshot()[0].seq > first_seq


def test_dequeue_flow_with_duplicate_ranks():
    pieo = ReferencePieo()
    for name in "abcde":
        pieo.enqueue(Element(name, rank=1))
    assert pieo.dequeue_flow("c").flow_id == "c"
    assert [e.flow_id for e in pieo.snapshot()] == ["a", "b", "d", "e"]


def test_is_full_property():
    pieo = ReferencePieo(1)
    assert not pieo.is_full
    pieo.enqueue(Element("a", rank=1))
    assert pieo.is_full


def test_iteration_yields_rank_order():
    pieo = ReferencePieo()
    pieo.enqueue(Element("b", rank=2))
    pieo.enqueue(Element("a", rank=1))
    assert [element.flow_id for element in pieo] == ["a", "b"]
