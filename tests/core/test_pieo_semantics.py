"""PIEO primitive semantics (Section 3.1), run against every
implementation: reference oracle, cycle-accurate hardware model, and the
footnote-7 PIFO-design variant."""

import math

import pytest

from repro.core.element import Element
from repro.errors import CapacityError, DuplicateFlowError


def make(factory, capacity=16):
    return factory(capacity)


def test_dequeue_returns_smallest_ranked_eligible(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("low-rank-late", rank=1, send_time=100))
    pieo.enqueue(Element("mid-rank-now", rank=5, send_time=0))
    pieo.enqueue(Element("high-rank-now", rank=9, send_time=0))
    served = pieo.dequeue(now=10)
    assert served.flow_id == "mid-rank-now"


def test_dequeue_null_when_no_eligible(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1, send_time=50))
    assert pieo.dequeue(now=49) is None
    assert len(pieo) == 1


def test_dequeue_empty_returns_null(pieo_factory):
    pieo = make(pieo_factory)
    assert pieo.dequeue(now=0) is None


def test_fifo_tie_break_on_equal_ranks(pieo_factory):
    pieo = make(pieo_factory)
    for name in ("first", "second", "third"):
        pieo.enqueue(Element(name, rank=7))
    assert pieo.dequeue(now=0).flow_id == "first"
    assert pieo.dequeue(now=0).flow_id == "second"
    assert pieo.dequeue(now=0).flow_id == "third"


def test_rank_order_with_interleaved_eligibility(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1, send_time=30))
    pieo.enqueue(Element("b", rank=2, send_time=10))
    pieo.enqueue(Element("c", rank=3, send_time=0))
    # At t=5 only c is eligible; at t=15 b beats c; at t=35 a beats all.
    assert pieo.dequeue(now=5).flow_id == "c"
    pieo.enqueue(Element("c", rank=3, send_time=0))
    assert pieo.dequeue(now=15).flow_id == "b"
    assert pieo.dequeue(now=35).flow_id == "a"
    assert pieo.dequeue(now=35).flow_id == "c"


def test_dequeue_specific_flow(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1))
    pieo.enqueue(Element("b", rank=2))
    pieo.enqueue(Element("c", rank=3))
    extracted = pieo.dequeue_flow("b")
    assert extracted.flow_id == "b"
    assert [e.flow_id for e in pieo.snapshot()] == ["a", "c"]


def test_dequeue_specific_missing_returns_null(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1))
    assert pieo.dequeue_flow("ghost") is None
    assert len(pieo) == 1


def test_dequeue_specific_ignores_eligibility(pieo_factory):
    """dequeue(f) is the asynchronous extract: it must work even for an
    ineligible element (Section 4.4 priority aging relies on this)."""
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1, send_time=math.inf))
    assert pieo.dequeue_flow("a").flow_id == "a"


def test_duplicate_flow_rejected(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1))
    with pytest.raises(DuplicateFlowError):
        pieo.enqueue(Element("a", rank=2))


def test_capacity_enforced(pieo_factory):
    pieo = make(pieo_factory, capacity=4)
    for index in range(4):
        pieo.enqueue(Element(index, rank=index))
    with pytest.raises(CapacityError):
        pieo.enqueue(Element("overflow", rank=0))


def test_reenqueue_after_dequeue_allows_same_flow(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=1))
    pieo.dequeue(now=0)
    pieo.enqueue(Element("a", rank=2))
    assert "a" in pieo


def test_snapshot_sorted_by_rank(pieo_factory, rng):
    pieo = make(pieo_factory, capacity=64)
    for index in range(50):
        pieo.enqueue(Element(index, rank=rng.randint(0, 20)))
    ranks = [element.rank for element in pieo.snapshot()]
    assert ranks == sorted(ranks)


def test_min_send_time(pieo_factory):
    pieo = make(pieo_factory)
    assert math.isinf(pieo.min_send_time())
    pieo.enqueue(Element("a", rank=1, send_time=30))
    pieo.enqueue(Element("b", rank=2, send_time=12))
    assert pieo.min_send_time() == 12
    pieo.dequeue(now=12)
    assert pieo.min_send_time() == 30


def test_peek_is_nondestructive(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("a", rank=4, send_time=0))
    pieo.enqueue(Element("b", rank=2, send_time=100))
    peeked = pieo.peek(now=0)
    assert peeked.flow_id == "a"
    assert len(pieo) == 2
    assert pieo.dequeue(now=0).flow_id == "a"


def test_group_range_extraction(pieo_factory):
    """The logical-PIEO extraction predicate (Section 4.3)."""
    pieo = make(pieo_factory)
    pieo.enqueue(Element("g0-a", rank=1, group=0))
    pieo.enqueue(Element("g1-a", rank=2, group=1))
    pieo.enqueue(Element("g1-b", rank=3, group=1))
    pieo.enqueue(Element("g2-a", rank=4, group=2))
    assert pieo.dequeue(now=0, group_range=(1, 1)).flow_id == "g1-a"
    assert pieo.dequeue(now=0, group_range=(1, 1)).flow_id == "g1-b"
    assert pieo.dequeue(now=0, group_range=(1, 1)) is None
    assert pieo.dequeue(now=0, group_range=(0, 2)).flow_id == "g0-a"


def test_group_range_respects_time_eligibility(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("early", rank=1, send_time=50, group=3))
    pieo.enqueue(Element("late", rank=9, send_time=0, group=3))
    assert pieo.dequeue(now=10, group_range=(3, 3)).flow_id == "late"
    assert pieo.dequeue(now=10, group_range=(3, 3)) is None
    assert pieo.dequeue(now=60, group_range=(3, 3)).flow_id == "early"


def test_negative_and_float_ranks(pieo_factory):
    pieo = make(pieo_factory)
    pieo.enqueue(Element("zero", rank=0.0))
    pieo.enqueue(Element("neg", rank=-3.5))
    pieo.enqueue(Element("pos", rank=2.25))
    assert pieo.dequeue(now=0).flow_id == "neg"
    assert pieo.dequeue(now=0).flow_id == "zero"
    assert pieo.dequeue(now=0).flow_id == "pos"


def test_contains_and_len(pieo_factory):
    pieo = make(pieo_factory)
    assert not pieo
    pieo.enqueue(Element("a", rank=1))
    assert "a" in pieo
    assert "b" not in pieo
    assert len(pieo) == 1
    assert pieo
