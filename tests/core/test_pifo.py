"""Tests for the PIFO baseline model and its footnote-7 PIEO variant."""

import pytest

from repro.core.element import Element
from repro.core.pifo import (PIFO_CYCLES_PER_OP, PifoDesignPieoList,
                             PifoHardwareList)
from repro.errors import CapacityError, DuplicateFlowError


def test_pifo_dequeues_from_head_only():
    pifo = PifoHardwareList(8)
    pifo.enqueue(Element("late", rank=9))
    pifo.enqueue(Element("early", rank=1))
    assert pifo.dequeue().flow_id == "early"
    assert pifo.dequeue().flow_id == "late"
    assert pifo.dequeue() is None


def test_pifo_ignores_eligibility():
    """The PIFO limitation: rank order only, no predicate filtering."""
    pifo = PifoHardwareList(8)
    pifo.enqueue(Element("ineligible", rank=1, send_time=float("inf")))
    pifo.enqueue(Element("eligible", rank=2, send_time=0))
    assert pifo.dequeue().flow_id == "ineligible"


def test_pifo_fifo_tie_break():
    pifo = PifoHardwareList(8)
    for name in ("x", "y", "z"):
        pifo.enqueue(Element(name, rank=4))
    assert [pifo.dequeue().flow_id for _ in range(3)] == ["x", "y", "z"]


def test_pifo_single_cycle_ops():
    pifo = PifoHardwareList(8)
    pifo.enqueue(Element("a", rank=1))
    pifo.dequeue()
    assert pifo.counters.cycles == 2 * PIFO_CYCLES_PER_OP
    assert pifo.counters.ops == {"enqueue": 1, "dequeue": 1}


def test_pifo_comparator_cost_scales_with_occupancy():
    """O(N) comparators: every resident element compares on enqueue."""
    pifo = PifoHardwareList(64)
    for index in range(50):
        pifo.enqueue(Element(index, rank=index))
    # Total comparator activations = 0 + 1 + ... + 49.
    assert pifo.counters.comparator_activations == sum(range(50))


def test_pifo_capacity_and_duplicates():
    pifo = PifoHardwareList(2)
    pifo.enqueue(Element("a", rank=1))
    with pytest.raises(DuplicateFlowError):
        pifo.enqueue(Element("a", rank=2))
    pifo.enqueue(Element("b", rank=1))
    with pytest.raises(CapacityError):
        pifo.enqueue(Element("c", rank=1))


def test_pifo_peek():
    pifo = PifoHardwareList(4)
    assert pifo.peek() is None
    pifo.enqueue(Element("a", rank=1))
    assert pifo.peek().flow_id == "a"
    assert len(pifo) == 1


def test_pifo_dequeue_flow():
    pifo = PifoHardwareList(4)
    pifo.enqueue(Element("a", rank=1))
    pifo.enqueue(Element("b", rank=2))
    assert pifo.dequeue_flow("b").flow_id == "b"
    assert pifo.dequeue_flow("b") is None


def test_pifo_design_pieo_respects_eligibility():
    variant = PifoDesignPieoList(8)
    variant.enqueue(Element("blocked", rank=1, send_time=100))
    variant.enqueue(Element("ready", rank=2, send_time=0))
    assert variant.dequeue(now=5).flow_id == "ready"
    assert variant.dequeue(now=5) is None
    assert variant.dequeue(now=100).flow_id == "blocked"


def test_pifo_design_pieo_single_cycle():
    """Footnote 7: PIEO on PIFO's design keeps the 1-cycle ops (the
    predicates evaluate in parallel in flip-flops)."""
    variant = PifoDesignPieoList(8)
    variant.enqueue(Element("a", rank=1))
    variant.dequeue(now=0)
    assert variant.counters.cycles == 2 * PIFO_CYCLES_PER_OP


def test_pifo_design_pieo_group_filtering():
    variant = PifoDesignPieoList(8)
    variant.enqueue(Element("g1", rank=1, group=1))
    variant.enqueue(Element("g2", rank=2, group=2))
    assert variant.dequeue(now=0, group_range=(2, 2)).flow_id == "g2"


def test_pifo_design_min_send_time_and_peek():
    variant = PifoDesignPieoList(8)
    assert variant.peek(now=0) is None
    variant.enqueue(Element("a", rank=1, send_time=7))
    assert variant.min_send_time() == 7
    assert variant.peek(now=7).flow_id == "a"
