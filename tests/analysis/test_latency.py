"""Tests for the latency/jitter analysis helpers."""

import math

import pytest

from repro.analysis.latency import (delay_stats_by_flow, packet_delays,
                                    pacing_jitter, percentile, summarize)
from repro.sim.packet import Packet


def make_packet(flow_id, arrival, departure):
    packet = Packet(flow_id, arrival_time=arrival)
    packet.departure_time = departure
    return packet


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 0.99) == 4.0
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 4.0
    assert math.isnan(percentile([], 0.5))
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0])
    assert stats.count == 3
    assert stats.mean == pytest.approx(2.0)
    assert stats.minimum == 1.0
    assert stats.maximum == 3.0
    assert stats.p50 == 2.0
    assert stats.stddev == pytest.approx(math.sqrt(2 / 3))


def test_summarize_empty():
    stats = summarize([])
    assert stats.count == 0
    assert math.isnan(stats.mean)


def test_packet_delays_skips_untransmitted():
    packets = [make_packet("a", 0.0, 1.0),
               Packet("a", arrival_time=0.0),  # never departed
               make_packet("b", 1.0, 4.0)]
    assert packet_delays(packets) == [1.0, 3.0]
    assert packet_delays(packets, flow_id="b") == [3.0]


def test_delay_stats_by_flow():
    packets = [make_packet("a", 0.0, 1.0), make_packet("a", 0.0, 3.0),
               make_packet("b", 0.0, 10.0)]
    stats = delay_stats_by_flow(packets)
    assert stats["a"].count == 2
    assert stats["a"].mean == pytest.approx(2.0)
    assert stats["b"].maximum == 10.0


def test_pacing_jitter_perfect_pacing_is_zero():
    gaps = [0.001] * 10
    stats = pacing_jitter(gaps, target_gap=0.001)
    assert stats.maximum == 0.0
    assert stats.mean == 0.0


def test_pacing_jitter_measures_deviation():
    stats = pacing_jitter([0.9e-3, 1.1e-3], target_gap=1e-3)
    assert stats.mean == pytest.approx(0.1e-3)
    with pytest.raises(ValueError):
        pacing_jitter([1.0], target_gap=0)
