"""Tests for fairness and deviation metrics."""

import pytest

from repro.analysis import (inversions, jains_index, kendall_tau_distance,
                            max_deviation, max_relative_error,
                            mean_deviation, normalized_shares,
                            positionwise_deviation, weighted_jains_index)


def test_jains_index_perfectly_fair():
    assert jains_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jains_index_maximally_unfair():
    assert jains_index([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jains_index_degenerate():
    assert jains_index([]) == 1.0
    assert jains_index([0, 0]) == 1.0


def test_weighted_jains_index():
    allocations = {"a": 1.0, "b": 2.0, "c": 3.0}
    weights = {"a": 1.0, "b": 2.0, "c": 3.0}
    assert weighted_jains_index(allocations, weights) == pytest.approx(1.0)
    skewed = weighted_jains_index({"a": 3.0, "b": 2.0, "c": 1.0}, weights)
    assert skewed < 1.0


def test_max_relative_error():
    achieved = {"a": 0.95, "b": 2.2}
    target = {"a": 1.0, "b": 2.0}
    assert max_relative_error(achieved, target) == pytest.approx(0.1)
    assert max_relative_error({}, {"a": 1.0}) == 1.0
    assert max_relative_error({"a": 1.0}, {"a": 0.0}) == 0.0


def test_normalized_shares():
    shares = normalized_shares({"a": 1.0, "b": 3.0})
    assert shares == {"a": 0.25, "b": 0.75}
    assert normalized_shares({"a": 0.0}) == {"a": 0.0}


def test_positionwise_deviation():
    assert positionwise_deviation("abc", "abc") == [0, 0, 0]
    assert positionwise_deviation("abc", "cab") == [1, 1, 2]


def test_deviation_requires_permutation():
    with pytest.raises(ValueError):
        positionwise_deviation(["a"], ["b"])


def test_max_and_mean_deviation():
    assert max_deviation("abcd", "dcba") == 3
    assert mean_deviation("abcd", "dcba") == pytest.approx(2.0)
    assert max_deviation([], []) == 0
    assert mean_deviation([], []) == 0.0


def test_inversions_and_kendall_tau():
    assert inversions("abc", "abc") == 0
    assert inversions("abc", "cba") == 3
    assert kendall_tau_distance("abc", "cba") == pytest.approx(1.0)
    assert kendall_tau_distance("abc", "abc") == 0.0
    assert kendall_tau_distance("a", "a") == 0.0
